// plum-trace observability layer: JSON model round-trips, metric ordering
// stability, TraceRecorder phase/superstep accounting, cross-engine
// byte-identical deterministic traces, the plum-bench/1 schema validator,
// and the Chrome trace exporter.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_report.hpp"
#include "obs/bench_schema.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "obs/json.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"
#include "runtime/collectives.hpp"
#include "runtime/engine.hpp"
#include "util/assert.hpp"
#include "util/rss.hpp"

namespace plum {
namespace {

using obs::Json;

TEST(Json, ScalarsAndRoundTrip) {
  Json doc = Json::object();
  doc.set("int", Json::integer(-42))
      .set("big", Json::integer(std::int64_t{1} << 60))
      .set("pi", Json::number(3.25))
      .set("flag", Json::boolean(true))
      .set("none", Json::null())
      .set("text", Json::str("hi"));

  const std::string s = doc.dump();
  Json back;
  std::string err;
  ASSERT_TRUE(Json::parse(s, &back, &err)) << err;
  EXPECT_EQ(back.find("int")->as_int(), -42);
  EXPECT_EQ(back.find("big")->as_int(), std::int64_t{1} << 60);
  EXPECT_EQ(back.find("pi")->as_double(), 3.25);
  EXPECT_TRUE(back.find("flag")->as_bool());
  EXPECT_EQ(back.find("none")->kind(), Json::Kind::kNull);
  EXPECT_EQ(back.find("text")->as_string(), "hi");
  // Serialization is deterministic: re-dumping the parse is byte-identical.
  EXPECT_EQ(back.dump(), s);
}

TEST(Json, StringEscapes) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  Json doc = Json::array();
  doc.push(Json::str(nasty));
  Json back;
  std::string err;
  ASSERT_TRUE(Json::parse(doc.dump(), &back, &err)) << err;
  EXPECT_EQ(back.at(0).as_string(), nasty);
  // \uXXXX decoding.
  ASSERT_TRUE(Json::parse("\"\\u0041\\u00e9\"", &back, &err)) << err;
  EXPECT_EQ(back.as_string(), "A\xc3\xa9");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json doc = Json::object();
  doc.set("zebra", Json::integer(1))
      .set("apple", Json::integer(2))
      .set("mid", Json::integer(3));
  EXPECT_EQ(doc.dump(), R"({"zebra":1,"apple":2,"mid":3})");
  // Overwrite keeps the original slot.
  doc.set("apple", Json::integer(9));
  EXPECT_EQ(doc.dump(), R"({"zebra":1,"apple":9,"mid":3})");
}

TEST(Json, ParserRejectsMalformedInput) {
  Json v;
  std::string err;
  EXPECT_FALSE(Json::parse("", &v, &err));
  EXPECT_FALSE(Json::parse("{", &v, &err));
  EXPECT_FALSE(Json::parse("[1,]", &v, &err));
  EXPECT_FALSE(Json::parse("{\"a\":1,}", &v, &err));
  EXPECT_FALSE(Json::parse("tru", &v, &err));
  EXPECT_FALSE(Json::parse("\"unterminated", &v, &err));
  EXPECT_FALSE(Json::parse("1 2", &v, &err));  // trailing garbage
  EXPECT_FALSE(err.empty());
}

TEST(Metrics, SortedAndInsertionOrderIndependent) {
  obs::MetricsRegistry a;
  a.set("speedup", 12.5);
  a.set_int("elements", 61000);
  a.set("imbalance", 1.02);

  obs::MetricsRegistry b;  // same values, different insertion order
  b.set("imbalance", 1.02);
  b.set("speedup", 12.5);
  b.set_int("elements", 61000);

  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_EQ(a.to_json().dump(),
            R"({"elements":61000,"imbalance":1.02,"speedup":12.5})");
  EXPECT_TRUE(a.contains("speedup"));
  EXPECT_EQ(a.get("elements"), 61000.0);
}

/// Deterministic two-superstep workload: each rank sends its id to rank 0
/// and charges r+1 units per step.
bool tick(Rank r, const rt::Inbox& in, rt::Outbox& out) {
  (void)in;
  out.charge(r + 1);
  out.send_vec<std::int32_t>(0, 7, {r});
  return out.step() < 1;
}

TEST(TraceRecorder, PhaseAndSuperstepAccounting) {
  rt::Engine eng(3);
  obs::TraceRecorder rec;
  eng.set_observer(&rec);

  {
    obs::PhaseScope outer(rec, "cycle");
    {
      obs::PhaseScope ph(rec, "solve");
      ph.set_modeled_seconds(1.5);
      eng.run(tick);
    }
    obs::PhaseScope idle(rec, "idle");  // no supersteps inside
  }

  ASSERT_EQ(rec.phases().size(), 3u);
  const auto& cycle = rec.phases()[0];
  const auto& solve = rec.phases()[1];
  const auto& idle = rec.phases()[2];
  EXPECT_EQ(cycle.name, "cycle");
  EXPECT_EQ(cycle.depth, 0);
  EXPECT_EQ(solve.depth, 1);
  EXPECT_TRUE(solve.closed);

  // Two supersteps, each charging 1+2+3 = 6 units and sending 3 msgs.
  ASSERT_EQ(rec.supersteps().size(), 2u);
  EXPECT_EQ(solve.supersteps, 2);
  EXPECT_EQ(solve.compute_units, 12);
  EXPECT_EQ(solve.msgs_sent, 6);
  EXPECT_EQ(solve.modeled_s, 1.5);
  // The outer phase saw the same steps; the empty phase saw none.
  EXPECT_EQ(cycle.supersteps, 2);
  EXPECT_EQ(cycle.compute_units, 12);
  EXPECT_EQ(idle.supersteps, 0);

  const auto& st = rec.supersteps()[0];
  EXPECT_EQ(st.step, 0);
  EXPECT_EQ(st.phase, "solve");  // innermost open phase
  ASSERT_EQ(st.counters.size(), 3u);
  EXPECT_EQ(st.counters[2].compute_units, 3);
  ASSERT_EQ(st.rank_seconds.size(), 3u);

  rec.clear();
  EXPECT_TRUE(rec.phases().empty());
  EXPECT_TRUE(rec.supersteps().empty());
}

TEST(TraceRecorder, DeterministicJsonIdenticalAcrossEngines) {
  auto run = [](rt::Engine& eng) {
    obs::TraceRecorder rec;
    eng.set_observer(&rec);
    obs::PhaseScope ph(rec, "storm");
    eng.run(tick);
    return rec;
  };

  rt::Engine seq(5);
  const std::string want = run(seq).deterministic_json();
  EXPECT_FALSE(want.empty());
  // Wall-clock fields must not leak into the deterministic view.
  EXPECT_EQ(want.find("wall_s"), std::string::npos);
  EXPECT_EQ(want.find("seconds"), std::string::npos);

  for (int threads : {1, 2, 4}) {
    rt::ParallelEngine par(5, threads);
    EXPECT_EQ(run(par).deterministic_json(), want) << "threads=" << threads;
  }
}

TEST(CriticalPath, CounterDecompositionOfTickWorkload) {
  rt::Engine eng(3);
  obs::TraceRecorder rec;
  eng.set_observer(&rec);
  {
    obs::PhaseScope ph(rec, "solve");
    eng.run(tick);  // 2 supersteps; rank r charges r+1 units each step
  }

  const auto cp =
      obs::analyze_critical_path(rec, obs::PathSource::kCounters);
  EXPECT_EQ(cp.source, obs::PathSource::kCounters);
  ASSERT_EQ(cp.steps.size(), 2u);
  for (const auto& sp : cp.steps) {
    EXPECT_EQ(sp.phase, "solve");
    EXPECT_EQ(sp.critical_rank, 2);  // charges 3 units, the most
    EXPECT_EQ(sp.critical, 3.0);
    EXPECT_EQ(sp.busy, 6.0);            // 1 + 2 + 3
    EXPECT_EQ(sp.wait, 3.0);            // (3-1) + (3-2) + (3-3)
    EXPECT_DOUBLE_EQ(sp.imbalance, 1.5);  // 3 / mean(2)
  }
  EXPECT_EQ(cp.critical_total, 6.0);
  EXPECT_EQ(cp.busy_total, 12.0);
  EXPECT_EQ(cp.wait_total, 6.0);
  EXPECT_DOUBLE_EQ(cp.wait_fraction(), 6.0 / 18.0);

  ASSERT_EQ(cp.ranks.size(), 3u);
  EXPECT_EQ(cp.ranks[0].busy, 2.0);
  EXPECT_EQ(cp.ranks[0].wait, 4.0);
  EXPECT_EQ(cp.ranks[0].steps_critical, 0);
  EXPECT_DOUBLE_EQ(cp.ranks[0].wait_fraction(), 4.0 / 6.0);
  EXPECT_EQ(cp.ranks[2].busy, 6.0);
  EXPECT_EQ(cp.ranks[2].wait, 0.0);
  EXPECT_EQ(cp.ranks[2].steps_critical, 2);
  EXPECT_EQ(cp.ranks[2].wait_fraction(), 0.0);

  ASSERT_EQ(cp.phases.size(), 1u);
  EXPECT_EQ(cp.phases[0].name, "solve");
  EXPECT_EQ(cp.phases[0].supersteps, 2);
  EXPECT_EQ(cp.phases[0].worst_rank, 2);
  EXPECT_EQ(cp.phases[0].worst_rank_steps, 2);

  // The JSON mirror carries the same numbers and no wall-clock vocabulary.
  const std::string json = cp.to_json().dump();
  EXPECT_NE(json.find("\"source\":\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_total\":6"), std::string::npos);
  EXPECT_EQ(json.find("seconds"), std::string::npos);
  EXPECT_EQ(json.find("wall"), std::string::npos);
}

TEST(CriticalPath, TieOnWorkGoesToLowestRankAndEmptyTraceIsZero) {
  // Equal charges: the critical rank must be the lowest (deterministic
  // tie-break), and wait is zero everywhere.
  rt::Engine eng(4);
  obs::TraceRecorder rec;
  eng.set_observer(&rec);
  eng.run([](Rank, const rt::Inbox&, rt::Outbox& out) {
    out.charge(5);
    return false;
  });
  const auto cp =
      obs::analyze_critical_path(rec, obs::PathSource::kCounters);
  ASSERT_EQ(cp.steps.size(), 1u);
  EXPECT_EQ(cp.steps[0].critical_rank, 0);
  EXPECT_EQ(cp.steps[0].wait, 0.0);
  EXPECT_DOUBLE_EQ(cp.steps[0].imbalance, 1.0);
  EXPECT_EQ(cp.wait_fraction(), 0.0);

  const obs::TraceRecorder empty;
  const auto none =
      obs::analyze_critical_path(empty, obs::PathSource::kCounters);
  EXPECT_TRUE(none.steps.empty());
  EXPECT_TRUE(none.ranks.empty());
  EXPECT_EQ(none.wait_fraction(), 0.0);
}

TEST(CriticalPath, WallSourceUsesMeasuredRankSeconds) {
  rt::Engine eng(3);
  obs::TraceRecorder rec;
  eng.set_observer(&rec);
  eng.run(tick);

  const auto cp =
      obs::analyze_critical_path(rec, obs::PathSource::kWallClock);
  ASSERT_EQ(cp.steps.size(), 2u);
  // Whatever the scheduler did, the invariants hold: the critical value is
  // the max, busy sums the rank values, and wait is their difference.
  for (const auto& sp : cp.steps) {
    EXPECT_GE(sp.critical, 0.0);
    EXPECT_GE(sp.busy, 0.0);
    EXPECT_NEAR(sp.wait, 3.0 * sp.critical - sp.busy, 1e-12);
  }
  const std::string json = cp.to_json().dump();
  EXPECT_NE(json.find("\"source\":\"wall\""), std::string::npos);
}

TEST(CriticalPath, EmbeddedInBothTraceSerializations) {
  rt::Engine eng(2);
  obs::TraceRecorder rec;
  eng.set_observer(&rec);
  eng.run(tick);

  const std::string det = rec.deterministic_json();
  EXPECT_NE(det.find("\"critical_path\""), std::string::npos);
  EXPECT_EQ(det.find("\"critical_path_wall\""), std::string::npos);

  const std::string full = rec.to_json().dump();
  EXPECT_NE(full.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(full.find("\"critical_path_wall\""), std::string::npos);
}

TEST(TraceRecorder, NullRecorderScopesAreNoOps) {
  obs::PhaseScope ph(nullptr, "nothing");
  ph.set_modeled_seconds(3.0);  // must not crash
}

TEST(TraceRecorder, CommMatrixAndTagClassesFromWorkload) {
  rt::Engine eng(3);
  obs::TraceRecorder rec;
  eng.set_observer(&rec);
  eng.run(tick);  // 2 steps, every rank sends one int32 to rank 0, tag 7

  const rt::CommMatrix& cm = rec.comm_matrix();
  ASSERT_EQ(cm.nranks, 3);
  for (Rank from = 0; from < 3; ++from) {
    EXPECT_EQ(cm.bytes_at(from, 0), 8);  // 4 bytes x 2 supersteps
    EXPECT_EQ(cm.msgs_at(from, 0), 2);
    EXPECT_EQ(cm.bytes_at(from, 1), 0);
    EXPECT_EQ(cm.bytes_at(from, 2), 0);
  }
  EXPECT_EQ(cm.total_bytes(), 24);
  EXPECT_EQ(cm.total_bytes(), eng.ledger().total_bytes());
  EXPECT_EQ(cm, eng.ledger().comm_matrix());

  const auto& by_class = rec.comm_by_class();
  ASSERT_EQ(by_class.size(), 1u);
  ASSERT_TRUE(by_class.count("tag7"));
  EXPECT_EQ(by_class.at("tag7").msgs, 6);
  EXPECT_EQ(by_class.at("tag7").bytes, 24);

  // Both serializations carry the matrix; clear() resets it.
  for (const std::string& json :
       {rec.deterministic_json(), rec.to_json().dump()}) {
    EXPECT_NE(json.find("\"comm_matrix\""), std::string::npos);
    EXPECT_NE(json.find("\"comm_by_class\""), std::string::npos);
    EXPECT_NE(json.find("\"gate_audit\""), std::string::npos);
  }
  rec.clear();
  EXPECT_EQ(rec.comm_matrix().total_bytes(), 0);
  EXPECT_TRUE(rec.comm_by_class().empty());
}

TEST(TraceRecorder, TagClassNames) {
  EXPECT_EQ(obs::tag_class_name(rt::detail::kCollectiveTag), "collective");
  EXPECT_EQ(obs::tag_class_name(0), "bulk");
  EXPECT_EQ(obs::tag_class_name(2), "adapt");
  EXPECT_EQ(obs::tag_class_name(11), "solver");
  EXPECT_EQ(obs::tag_class_name(111), "solver");
  // Unknown tags fall back to a "tag<N>" bucket instead of aborting, so a
  // new subsystem's traffic still shows up in the per-class split.
  EXPECT_EQ(obs::tag_class_name(42), "tag42");
  EXPECT_EQ(obs::tag_class_name(4), "tag4");     // just past the adapt range
  EXPECT_EQ(obs::tag_class_name(13), "tag13");   // just past the solver tags
  EXPECT_EQ(obs::tag_class_name(-7), "tag-7");   // negative tags too
}

TEST(GateAudit, DriftAndRecordSerialization) {
  // Zero-predicted drift is a deliberate policy, not an accident: a remap
  // the model priced at zero bytes reports drift 0 whether or not anything
  // actually moved, because a non-finite ratio would poison JSON dumps and
  // every mean-drift aggregate downstream (sim::Calibration included).
  EXPECT_EQ(obs::gate_drift(0, 100), 0.0);  // predicted 0, measured > 0
  EXPECT_EQ(obs::gate_drift(0, 0), 0.0);    // predicted 0, measured 0
  EXPECT_DOUBLE_EQ(obs::gate_drift(100, 125), 0.25);
  EXPECT_DOUBLE_EQ(obs::gate_drift(200, 100), -0.5);

  obs::GateRecord rec;
  rec.cycle = 3;
  rec.evaluated = true;
  rec.accepted = true;
  rec.metric = "TotalV";
  rec.imbalance_old = 1.5;
  rec.imbalance_new = 1.0625;
  rec.gain_s = 0.75;
  rec.cost_s = 0.25;
  rec.moved_elems = 40;
  rec.moved_sets = 6;
  rec.predicted_move_bytes = 4096;
  rec.measured_move_bytes = 5120;
  rec.drift = obs::gate_drift(4096, 5120);

  const Json j = obs::gate_record_json(rec);
  // Field order is part of the deterministic byte contract.
  EXPECT_EQ(j.dump(),
            "{\"cycle\":3,\"evaluated\":true,\"accepted\":true,"
            "\"metric\":\"TotalV\",\"imbalance_old\":1.5,"
            "\"imbalance_new\":1.0625,\"gain_s\":0.75,\"cost_s\":0.25,"
            "\"moved_elems\":40,\"moved_sets\":6,"
            "\"predicted_move_bytes\":4096,\"measured_move_bytes\":5120,"
            "\"drift\":0.25}");

  const Json audit = obs::gate_audit_json({rec, obs::GateRecord{}});
  ASSERT_TRUE(audit.is_array());
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_EQ(audit.at(1).find("evaluated")->as_bool(), false);

  // Recorder round-trip: records land in both JSON views.
  obs::TraceRecorder tr;
  tr.add_gate_record(rec);
  ASSERT_EQ(tr.gate_records().size(), 1u);
  EXPECT_EQ(tr.gate_records()[0], rec);
  EXPECT_NE(tr.deterministic_json().find("\"predicted_move_bytes\":4096"),
            std::string::npos);
  tr.clear();
  EXPECT_TRUE(tr.gate_records().empty());
}

TEST(Metrics, GaugeSeriesAppendAndMerge) {
  obs::MetricsRegistry m;
  m.add_sample("imbalance", 1.5);
  m.add_sample("imbalance", 1.25);
  m.add_sample_int("edge_cut", 40);
  m.add_sample_int("edge_cut", 36);
  m.set("speedup", 2.0);

  EXPECT_TRUE(m.is_series("imbalance"));
  EXPECT_FALSE(m.is_series("speedup"));
  EXPECT_EQ(m.series("imbalance"), (std::vector<double>{1.5, 1.25}));
  EXPECT_EQ(m.series("edge_cut"), (std::vector<double>{40.0, 36.0}));
  // Series render as arrays (ints stay integers), scalars as before.
  EXPECT_EQ(m.to_json().dump(),
            R"({"edge_cut":[40,36],"imbalance":[1.5,1.25],"speedup":2})");

  obs::MetricsRegistry dst;
  dst.set_int("elements", 100);
  dst.merge_from(m);
  EXPECT_EQ(dst.size(), 4u);
  EXPECT_EQ(dst.series("imbalance"), m.series("imbalance"));
  EXPECT_EQ(dst.get("elements"), 100.0);
  // merge_from replaces series wholesale (no concatenation).
  dst.merge_from(m);
  EXPECT_EQ(dst.series("edge_cut"), (std::vector<double>{40.0, 36.0}));
}

TEST(Metrics, MergeFromReplacesSeriesAndOverwritesScalars) {
  obs::MetricsRegistry src;
  src.add_sample("imbalance", 1.4);
  src.set("speedup", 3.0);

  obs::MetricsRegistry dst;
  dst.add_sample("imbalance", 9.0);  // longer, stale series
  dst.add_sample("imbalance", 8.0);
  dst.add_sample("imbalance", 7.0);
  dst.set("speedup", 1.0);
  dst.merge_from(src);
  // Replacement semantics: the destination's series is discarded, not
  // appended to — the merged registry reads exactly like the source.
  EXPECT_EQ(dst.series("imbalance"), (std::vector<double>{1.4}));
  EXPECT_EQ(dst.get("speedup"), 3.0);
  // Names only the destination had survive untouched.
  dst.set_int("only_here", 5);
  dst.merge_from(src);
  EXPECT_EQ(dst.get("only_here"), 5.0);
}

TEST(Metrics, HistogramCountsQuantilesAndOverflow) {
  obs::MetricsRegistry m;
  m.define_histogram("lat", {0.1, 1.0, 10.0});
  EXPECT_TRUE(m.is_histogram("lat"));
  EXPECT_FALSE(m.is_series("lat"));
  EXPECT_EQ(m.hist_count("lat"), 0);
  EXPECT_EQ(m.hist_quantile("lat", 0.5), 0.0);  // empty -> 0

  for (const double v : {0.05, 0.07, 0.5, 2.0, 3.0, 4.0}) {
    m.add_hist_sample("lat", v);
  }
  EXPECT_EQ(m.hist_count("lat"), 6);
  EXPECT_EQ(m.hist_max("lat"), 4.0);
  // Buckets: (<=0.1)=2, (<=1)=1, (<=10)=3, overflow=0. Quantiles render as
  // bucket upper bounds: the 3rd of 6 samples sits in the <=1.0 bucket.
  EXPECT_EQ(m.hist_quantile("lat", 0.5), 1.0);
  EXPECT_EQ(m.hist_quantile("lat", 0.95), 10.0);
  EXPECT_EQ(m.hist_quantile("lat", 0.01), 0.1);

  // Overflow samples report the tracked max, not a bound.
  m.add_hist_sample("lat", 1000.0);
  EXPECT_EQ(m.hist_quantile("lat", 1.0), 1000.0);
  EXPECT_EQ(m.hist_max("lat"), 1000.0);

  // Redefinition is a no-op: bounds and samples survive. With 7 samples
  // the 4th now sits in the <=10.0 bucket.
  m.define_histogram("lat", {99.0});
  EXPECT_EQ(m.hist_count("lat"), 7);
  EXPECT_EQ(m.hist_quantile("lat", 0.5), 10.0);
}

TEST(Metrics, HistogramJsonAndDeterministicView) {
  obs::MetricsRegistry m;
  m.set("speedup", 2.0);
  m.define_histogram("work", {1.0, 2.0});
  m.add_hist_sample("work", 1.5);
  m.define_histogram("step_s", {0.5}, /*wall_clock=*/true);
  m.add_hist_sample("step_s", 0.25);

  const std::string full = m.to_json().dump();
  EXPECT_NE(full.find("\"work\":{\"histogram\":true,\"wall\":false"),
            std::string::npos)
      << full;
  EXPECT_NE(full.find("\"step_s\":{\"histogram\":true,\"wall\":true"),
            std::string::npos)
      << full;
  EXPECT_NE(full.find("\"counts\":[0,1,0]"), std::string::npos) << full;

  // The deterministic view drops wall-clock histograms and nothing else.
  const std::string det = m.deterministic_json().dump();
  EXPECT_EQ(det.find("step_s"), std::string::npos) << det;
  EXPECT_NE(det.find("\"work\""), std::string::npos);
  EXPECT_NE(det.find("\"speedup\""), std::string::npos);

  // Histograms merge by replacement, like series.
  obs::MetricsRegistry dst;
  dst.define_histogram("work", {1.0, 2.0});
  dst.add_hist_sample("work", 0.5);
  dst.merge_from(m);
  EXPECT_EQ(dst.hist_count("work"), 1);
  EXPECT_EQ(dst.hist_max("work"), 1.5);
}

Json valid_report() {
  Json phase = Json::object();
  phase.set("name", Json::str("solve"))
      .set("wall_s", Json::number(0.25))
      .set("modeled_s", Json::number(0.5))
      .set("supersteps", Json::integer(7));
  Json run = Json::object();
  run.set("case", Json::str("Real_1"))
      .set("P", Json::integer(8))
      .set("metrics",
           Json::object().set("speedup", Json::number(9.3)))
      .set("phases", Json::array().push(std::move(phase)));
  Json doc = Json::object();
  doc.set("schema", Json::str("plum-bench/1"))
      .set("bench", Json::str("bench_fig4"))
      .set("runs", Json::array().push(std::move(run)));
  return doc;
}

TEST(BenchSchema, AcceptsValidReport) {
  EXPECT_EQ(obs::validate_bench_report(valid_report()), "");
}

TEST(BenchSchema, RejectsViolations) {
  EXPECT_NE(obs::validate_bench_report(Json::integer(3)), "");
  EXPECT_NE(obs::validate_bench_report(Json::object()), "");

  {
    Json doc = valid_report();
    doc.set("schema", Json::str("plum-bench/99"));
    EXPECT_NE(obs::validate_bench_report(doc), "");
  }
  {
    Json doc = valid_report();
    doc.set("runs", Json::array());  // empty runs
    EXPECT_NE(obs::validate_bench_report(doc), "");
  }
  {
    Json doc = valid_report();
    Json run = doc.find("runs")->at(0);
    run.set("P", Json::integer(0));  // P < 1
    doc.set("runs", Json::array().push(std::move(run)));
    EXPECT_NE(obs::validate_bench_report(doc), "");
  }
  {
    Json doc = valid_report();
    Json run = doc.find("runs")->at(0);
    run.set("metrics",
            Json::object().set("oops", Json::str("not a number")));
    doc.set("runs", Json::array().push(std::move(run)));
    EXPECT_NE(obs::validate_bench_report(doc), "");
  }
  {
    Json doc = valid_report();
    Json run = doc.find("runs")->at(0);
    Json phase = Json::object();
    phase.set("name", Json::str("solve"));  // missing wall_s etc.
    run.set("phases", Json::array().push(std::move(phase)));
    doc.set("runs", Json::array().push(std::move(run)));
    EXPECT_NE(obs::validate_bench_report(doc), "");
  }
}

Json valid_v2_report() {
  Json doc = valid_report();
  doc.set("schema", Json::str("plum-bench/2"));
  Json run = doc.find("runs")->at(0);
  // Gauge series: arrays of numbers are v2-only.
  Json metrics = *run.find("metrics");
  metrics.set("imbalance",
              Json::array().push(Json::number(1.5)).push(Json::number(1.1)));
  metrics.set("edge_cut",
              Json::array().push(Json::integer(40)).push(Json::integer(36)));
  run.set("metrics", std::move(metrics));
  // 2x2 comm matrix with matching msgs/bytes shapes.
  auto row = [](std::int64_t a, std::int64_t b) {
    return Json::array().push(Json::integer(a)).push(Json::integer(b));
  };
  Json cm = Json::object();
  cm.set("nranks", Json::integer(2))
      .set("msgs", Json::array().push(row(0, 1)).push(row(1, 0)))
      .set("bytes", Json::array().push(row(0, 8)).push(row(16, 0)));
  run.set("comm_matrix", std::move(cm));
  obs::GateRecord g;
  g.cycle = 0;
  g.evaluated = true;
  g.accepted = true;
  g.metric = "MaxV";
  g.predicted_move_bytes = 10;
  g.measured_move_bytes = 12;
  g.drift = obs::gate_drift(10, 12);
  run.set("gate_audit", obs::gate_audit_json({g}));
  doc.set("runs", Json::array().push(std::move(run)));
  return doc;
}

TEST(BenchSchema, V2AcceptsGaugesCommMatrixAndGateAudit) {
  EXPECT_EQ(obs::validate_bench_report(valid_v2_report()), "");
}

TEST(BenchSchema, V2OnlyFieldsRejectedUnderV1) {
  // The same document under schema v1 must fail on each v2-only field.
  Json doc = valid_v2_report();
  doc.set("schema", Json::str("plum-bench/1"));
  const std::string err = obs::validate_bench_report(doc);
  EXPECT_NE(err, "");
  EXPECT_NE(err.find("plum-bench/2"), std::string::npos) << err;
}

TEST(BenchSchema, V2RejectsMalformedCommMatrixAndGateAudit) {
  {
    Json doc = valid_v2_report();
    Json run = doc.find("runs")->at(0);
    Json cm = *run.find("comm_matrix");
    cm.set("nranks", Json::integer(3));  // rows no longer match nranks
    run.set("comm_matrix", std::move(cm));
    doc.set("runs", Json::array().push(std::move(run)));
    EXPECT_NE(obs::validate_bench_report(doc), "");
  }
  {
    Json doc = valid_v2_report();
    Json run = doc.find("runs")->at(0);
    Json cm = *run.find("comm_matrix");
    // Rebuild the byte rows with a negative count in (0,1).
    Json bad_row = Json::array().push(Json::integer(0)).push(Json::integer(-5));
    Json rebuilt =
        Json::array().push(std::move(bad_row)).push(cm.find("bytes")->at(1));
    cm.set("bytes", std::move(rebuilt));
    run.set("comm_matrix", std::move(cm));
    doc.set("runs", Json::array().push(std::move(run)));
    EXPECT_NE(obs::validate_bench_report(doc), "");
  }
  {
    Json doc = valid_v2_report();
    Json run = doc.find("runs")->at(0);
    Json bad = Json::object();
    bad.set("cycle", Json::integer(0));  // missing decision/cost fields
    run.set("gate_audit", Json::array().push(std::move(bad)));
    doc.set("runs", Json::array().push(std::move(run)));
    EXPECT_NE(obs::validate_bench_report(doc), "");
  }
}

TEST(BenchSchema, V2AcceptsHistogramsAndCriticalPath) {
  // Build the document the real producers build: a registry histogram and
  // a recorder's counter-sourced critical path, both through JsonReport.
  rt::Engine eng(2);
  obs::TraceRecorder rec;
  eng.set_observer(&rec);
  eng.run(tick);

  obs::MetricsRegistry m;
  m.define_histogram("rank_wait_fraction", {0.1, 0.5, 1.0});
  m.add_hist_sample("rank_wait_fraction", 0.25);

  Json doc = valid_v2_report();
  Json run = doc.find("runs")->at(0);
  Json metrics = *run.find("metrics");
  metrics.set("rank_wait_fraction",
              *m.to_json().find("rank_wait_fraction"));
  run.set("metrics", std::move(metrics));
  run.set("critical_path",
          obs::analyze_critical_path(rec, obs::PathSource::kCounters)
              .to_json());
  doc.set("runs", Json::array().push(std::move(run)));
  EXPECT_EQ(obs::validate_bench_report(doc), "") << doc.dump(2);

  // Both are v2-only.
  Json v1 = doc;
  v1.set("schema", Json::str("plum-bench/1"));
  const std::string err = obs::validate_bench_report(v1);
  EXPECT_NE(err, "");
  EXPECT_NE(err.find("plum-bench/2"), std::string::npos) << err;
}

TEST(BenchSchema, V2RejectsMalformedHistogramAndCriticalPath) {
  {
    // counts must have bounds+1 buckets.
    Json doc = valid_v2_report();
    Json run = doc.find("runs")->at(0);
    Json h = Json::object();
    h.set("histogram", Json::boolean(true))
        .set("wall", Json::boolean(false))
        .set("count", Json::integer(1))
        .set("max", Json::number(1.0))
        .set("p50", Json::number(1.0))
        .set("p95", Json::number(1.0))
        .set("bounds", Json::array().push(Json::number(1.0)))
        .set("counts", Json::array().push(Json::integer(1)));  // needs 2
    Json metrics = *run.find("metrics");
    metrics.set("bad_hist", std::move(h));
    run.set("metrics", std::move(metrics));
    doc.set("runs", Json::array().push(std::move(run)));
    const std::string err = obs::validate_bench_report(doc);
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("bad_hist"), std::string::npos) << err;
  }
  {
    // critical_path must carry its totals and section arrays.
    Json doc = valid_v2_report();
    Json run = doc.find("runs")->at(0);
    Json cp = Json::object();
    cp.set("source", Json::str("counters"));  // missing everything else
    run.set("critical_path", std::move(cp));
    doc.set("runs", Json::array().push(std::move(run)));
    EXPECT_NE(obs::validate_bench_report(doc), "");
  }
}

/// The shape sim::Calibration::to_json() emits (plum-calibration/1); built
/// by hand here because obs must not depend on sim.
Json valid_calibration_section() {
  Json params = Json::object();
  params.set("t_iter", Json::number(65e-6))
      .set("t_refine", Json::number(190e-6))
      .set("t_lat", Json::number(2.4e-6))
      .set("t_setup", Json::number(80e-6))
      .set("bytes_per_element", Json::number(720.0))
      .set("bytes_per_set", Json::number(96.0))
      .set("gate_margin", Json::number(1.0));
  Json cal = Json::object();
  cal.set("schema", Json::str("plum-calibration/1"))
      .set("enabled", Json::boolean(true))
      .set("cycles_observed", Json::integer(3))
      .set("remap_samples", Json::integer(2))
      .set("mean_abs_drift", Json::number(0.12))
      .set("params", std::move(params))
      .set("rank_weight_scale",
           Json::array().push(Json::number(1.0)).push(Json::number(1.25)));
  return cal;
}

TEST(BenchSchema, V2AcceptsCalibrationSectionAndGateRegressors) {
  Json doc = valid_v2_report();
  Json run = doc.find("runs")->at(0);
  run.set("calibration", valid_calibration_section());
  // Gate records may carry the calibration regressors.
  obs::GateRecord g;
  g.cycle = 1;
  g.evaluated = true;
  g.accepted = true;
  g.metric = "TotalV";
  g.moved_elems = 500;
  g.moved_sets = 12;
  g.predicted_move_bytes = 360960;
  g.measured_move_bytes = 401000;
  g.drift = obs::gate_drift(g.predicted_move_bytes, g.measured_move_bytes);
  run.set("gate_audit", obs::gate_audit_json({g}));
  doc.set("runs", Json::array().push(std::move(run)));
  EXPECT_EQ(obs::validate_bench_report(doc), "") << doc.dump(2);

  // Calibration is v2-only.
  Json v1 = doc;
  v1.set("schema", Json::str("plum-bench/1"));
  const std::string err = obs::validate_bench_report(v1);
  EXPECT_NE(err, "");
  EXPECT_NE(err.find("plum-bench/2"), std::string::npos) << err;
}

TEST(BenchSchema, V2RejectsMalformedCalibration) {
  {
    // Wrong embedded schema tag.
    Json doc = valid_v2_report();
    Json run = doc.find("runs")->at(0);
    Json cal = valid_calibration_section();
    cal.set("schema", Json::str("plum-calibration/2"));
    run.set("calibration", std::move(cal));
    doc.set("runs", Json::array().push(std::move(run)));
    EXPECT_NE(obs::validate_bench_report(doc), "");
  }
  {
    // Params must carry every calibrated constant.
    Json doc = valid_v2_report();
    Json run = doc.find("runs")->at(0);
    Json cal = valid_calibration_section();
    Json params = *cal.find("params");
    params.set("gate_margin", Json::str("wide"));
    cal.set("params", std::move(params));
    run.set("calibration", std::move(cal));
    doc.set("runs", Json::array().push(std::move(run)));
    EXPECT_NE(obs::validate_bench_report(doc), "");
  }
  {
    // Negative regressors in the gate audit are invalid.
    Json doc = valid_v2_report();
    Json run = doc.find("runs")->at(0);
    Json rec = run.find("gate_audit")->at(0);
    rec.set("moved_sets", Json::integer(-3));
    run.set("gate_audit", Json::array().push(std::move(rec)));
    doc.set("runs", Json::array().push(std::move(run)));
    EXPECT_NE(obs::validate_bench_report(doc), "");
  }
}

TEST(ChromeTrace, ParsesAndCoversPhasesAndRanks) {
  rt::Engine eng(2);
  obs::TraceRecorder rec;
  eng.set_observer(&rec);
  {
    obs::PhaseScope ph(rec, "solve");
    eng.run(tick);
  }

  const Json doc = obs::chrome_trace_json(rec, "unit test");
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int phase_spans = 0, rank_spans = 0, wait_spans = 0, meta = 0,
      counters = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& ev = events->at(i);
    const std::string ph = ev.find("ph")->as_string();
    if (ph == "M") {
      ++meta;
      continue;
    }
    if (ph == "C") {
      // Per-superstep traffic counter track.
      ++counters;
      ASSERT_NE(ev.find("ts"), nullptr);
      const Json* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("msgs"), nullptr);
      ASSERT_NE(args->find("bytes"), nullptr);
      continue;
    }
    ASSERT_EQ(ph, "X");
    ASSERT_NE(ev.find("ts"), nullptr);
    ASSERT_NE(ev.find("dur"), nullptr);
    if (ev.find("tid")->as_int() == 0) {
      ++phase_spans;
    } else if (ev.find("name")->as_string() == "wait") {
      ++wait_spans;
      const Json* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("critical_rank"), nullptr);
      ASSERT_NE(args->find("wait_s"), nullptr);
    } else {
      ++rank_spans;
    }
  }
  EXPECT_EQ(phase_spans, 1);
  EXPECT_EQ(rank_spans, 2 * 2);  // 2 supersteps x 2 ranks
  EXPECT_EQ(wait_spans, 2 * 1);  // per superstep, every non-critical rank
  EXPECT_EQ(counters, 2);        // one traffic counter event per superstep
  EXPECT_GE(meta, 3);            // process_name + >= 2 thread_names

  // Round-trips through the strict parser.
  Json back;
  std::string err;
  EXPECT_TRUE(Json::parse(doc.dump(2), &back, &err)) << err;
}

TEST(JsonReport, WritesValidatedFileHonoringDirOverride) {
  const std::string dir = testing::TempDir();
  ASSERT_EQ(setenv("PLUM_BENCH_JSON_DIR", dir.c_str(), 1), 0);

  bench::JsonReport report("unit");
  report.add_run("caseA", 4)
      .metric("speedup", 2.5)
      .metric_int("elements", 123)
      .phase("solve", 0.1, 0.2, 3);

  const std::string path = report.write();
  ASSERT_NE(unsetenv("PLUM_BENCH_JSON_DIR"), -1);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path, dir + "/BENCH_unit.json");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  Json doc;
  std::string err;
  ASSERT_TRUE(Json::parse(buf.str(), &doc, &err)) << err;
  EXPECT_EQ(obs::validate_bench_report(doc), "");
  EXPECT_EQ(doc.find("bench")->as_string(), "unit");
  const Json& run = doc.find("runs")->at(0);
  EXPECT_EQ(run.find("case")->as_string(), "caseA");
  EXPECT_EQ(run.find("P")->as_int(), 4);
  EXPECT_EQ(run.find("metrics")->find("elements")->as_int(), 123);
  EXPECT_EQ(run.find("phases")->at(0).find("supersteps")->as_int(), 3);
}

TEST(JsonReport, RefusesToWriteInvalidReport) {
  bench::JsonReport report("empty");  // no runs -> schema violation
  EXPECT_EQ(report.write(), "");
}

// --- plum-scope: flight recorder, live stream records, postmortems ----------

TEST(FlightRecorder, RingOverwritesOldestKeepingNewestEvents) {
  obs::FlightRecorder rec(2, /*capacity=*/4);
  auto handles = rec.handles();
  ASSERT_EQ(handles.size(), 2u);
  for (int i = 0; i < 10; ++i) handles[0].record_event(i, i * 100);
  handles[1].record_event(7, 42);

  EXPECT_EQ(rec.events_recorded(0), 10u);
  EXPECT_EQ(rec.events_recorded(1), 1u);
  const auto ev0 = rec.last_events(0);
  ASSERT_EQ(ev0.size(), 4u);  // capacity events survive, oldest first
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ev0[static_cast<std::size_t>(i)].step, 6 + i);
    EXPECT_EQ(ev0[static_cast<std::size_t>(i)].ticks, (6 + i) * 100);
    EXPECT_EQ(ev0[static_cast<std::size_t>(i)].rank, 0);
  }
  ASSERT_EQ(rec.last_events(1).size(), 1u);
  EXPECT_EQ(rec.last_events(1)[0].ticks, 42);

  rec.clear();
  EXPECT_EQ(rec.events_recorded(0), 0u);
  EXPECT_TRUE(rec.last_events(0).empty());
  EXPECT_EQ(rec.capacity(), 4);  // capacity survives a clear
}

TEST(FlightRecorder, PhaseStampingInternsNamesOnce) {
  obs::FlightRecorder rec(1, 8);
  auto h = rec.handles();
  h[0].record_event(0, 1);  // outside any phase
  rec.set_phase("solve");
  h[0].record_event(1, 1);
  rec.set_phase("mark");
  h[0].record_event(2, 1);
  rec.set_phase("solve");  // re-entering reuses the interned id
  h[0].record_event(3, 1);
  rec.clear_phase();
  h[0].record_event(4, 1);

  const auto ev = rec.last_events(0);
  ASSERT_EQ(ev.size(), 5u);
  EXPECT_EQ(ev[0].phase, -1);
  EXPECT_EQ(ev[1].phase, 0);
  EXPECT_EQ(ev[2].phase, 1);
  EXPECT_EQ(ev[3].phase, 0);
  EXPECT_EQ(ev[4].phase, -1);
  ASSERT_EQ(rec.phase_names().size(), 2u);
  EXPECT_EQ(rec.phase_names()[0], "solve");
  EXPECT_EQ(rec.phase_names()[1], "mark");
}

TEST(FlightRecorder, DeterministicJsonExcludesWallClock) {
  auto fill = [](std::int64_t wall) {
    obs::FlightRecorder rec(2, 4);
    auto h = rec.handles();
    rec.set_phase("solve");
    h[0].record_event(0, 10, wall);
    h[1].record_event(0, 20, wall * 3);
    return rec;
  };
  const obs::FlightRecorder fast = fill(1);
  const obs::FlightRecorder slow = fill(999999);
  // The full forensic view carries the differing wall clocks...
  EXPECT_NE(fast.to_json().dump(), slow.to_json().dump());
  EXPECT_NE(fast.to_json().dump().find("wall_ns"), std::string::npos);
  // ...but the deterministic view is byte-identical and wall-free.
  EXPECT_EQ(fast.deterministic_json().dump(), slow.deterministic_json().dump());
  EXPECT_EQ(fast.deterministic_json().dump().find("wall_ns"),
            std::string::npos);
}

Json valid_scope_record() {
  Json gate = Json::object();
  gate.set("evaluated", Json::boolean(true))
      .set("accepted", Json::boolean(false));
  Json ranks = Json::array();
  for (int r = 0; r < 2; ++r) {
    Json rk = Json::object();
    rk.set("rank", Json::integer(r))
        .set("busy", Json::integer(10 + r))
        .set("wait", Json::integer(2 - r));
    ranks.push(std::move(rk));
  }
  Json rec = Json::object();
  rec.set("schema", Json::str("plum-scope/1"))
      .set("name", Json::str("unit"))
      .set("cycle", Json::integer(0))
      .set("supersteps", Json::integer(12))
      .set("elements", Json::integer(500))
      .set("imbalance", Json::number(1.25))
      .set("wall_s", Json::number(0.25))
      .set("gate", std::move(gate))
      .set("ranks", std::move(ranks));
  return rec;
}

TEST(ScopeSchema, AcceptsRecordAndRejectsViolations) {
  EXPECT_EQ(obs::validate_scope_record(valid_scope_record()), "");

  {
    Json bad = valid_scope_record();
    bad.set("schema", Json::str("plum-scope/2"));
    EXPECT_NE(obs::validate_scope_record(bad), "");
  }
  {
    Json bad = valid_scope_record();
    bad.set("name", Json::str(""));
    EXPECT_NE(obs::validate_scope_record(bad), "");
  }
  {
    Json bad = valid_scope_record();
    bad.set("cycle", Json::integer(-1));
    EXPECT_NE(obs::validate_scope_record(bad), "");
  }
  {
    Json bad = valid_scope_record();
    bad.set("gate", Json::object().set("evaluated", Json::boolean(true)));
    EXPECT_NE(obs::validate_scope_record(bad), "");  // accepted missing
  }
  {
    Json bad = valid_scope_record();
    Json rk = bad.find("ranks")->at(0);
    rk.set("busy", Json::integer(-3));
    bad.set("ranks", Json::array().push(std::move(rk)));
    EXPECT_NE(obs::validate_scope_record(bad), "");
  }
  {
    Json bad = valid_scope_record();
    bad.set("depot", Json::str("not an array"));
    EXPECT_NE(obs::validate_scope_record(bad), "");
  }
}

TEST(ScopeStreamWriter, AppendsOneValidatedLinePerRecord) {
  const std::string path = testing::TempDir() + "scope_stream_unit.ndjson";
  std::remove(path.c_str());
  {
    obs::ScopeStreamWriter w(path);
    ASSERT_TRUE(w.ok());
    EXPECT_TRUE(w.append(valid_scope_record()));
    Json second = valid_scope_record();
    second.set("cycle", Json::integer(1));
    EXPECT_TRUE(w.append(second));
  }
  // A second writer appends rather than truncates — exactly what a
  // multi-sweep bench run relies on.
  {
    obs::ScopeStreamWriter w(path);
    ASSERT_TRUE(w.ok());
    Json third = valid_scope_record();
    third.set("cycle", Json::integer(2));
    EXPECT_TRUE(w.append(third));
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    Json rec;
    std::string err;
    ASSERT_TRUE(Json::parse(line, &rec, &err)) << err;
    EXPECT_EQ(obs::validate_scope_record(rec), "");
    EXPECT_EQ(rec.find("cycle")->as_int(), n);
    ++n;
  }
  EXPECT_EQ(n, 3);
  std::remove(path.c_str());
}

TEST(Postmortem, BuilderEmitsValidatedDocumentWithCrashNotes) {
  obs::FlightRecorder rec(2, 4);
  auto h = rec.handles();
  h[0].record_event(0, 5, 123);
  h[1].record_event(0, 7, 456);

  plum::detail::note_crash("child_stderr", "plum-depot group=1 pid=7 started");
  plum::detail::note_crash("dead_group", "1");
  obs::PostmortemConfig cfg;
  cfg.name = "unit";
  cfg.recorder = &rec;
  const Json doc = obs::postmortem_json(cfg, "x == y", "file.cpp", 42, "boom");
  plum::detail::crash_notes().clear();

  EXPECT_EQ(obs::validate_postmortem(doc), "");
  EXPECT_EQ(doc.find("name")->as_string(), "unit");
  EXPECT_EQ(doc.find("reason")->find("expr")->as_string(), "x == y");
  EXPECT_EQ(doc.find("reason")->find("line")->as_int(), 42);
  EXPECT_EQ(doc.find("reason")->find("msg")->as_string(), "boom");
  EXPECT_EQ(doc.find("child_stderr")->as_string(),
            "plum-depot group=1 pid=7 started");
  // child_stderr is surfaced top-level, the rest stays under notes.
  EXPECT_EQ(doc.find("notes")->find("child_stderr"), nullptr);
  EXPECT_EQ(doc.find("notes")->find("dead_group")->as_string(), "1");
  const Json* scope = doc.find("scope");
  ASSERT_NE(scope, nullptr);
  EXPECT_EQ(scope->find("ranks")->size(), 2u);
  // Postmortems keep wall clocks: forensic output, never diffed.
  EXPECT_NE(doc.dump().find("wall_ns"), std::string::npos);
  EXPECT_EQ(doc.find("depot"), nullptr);  // no transport attached

  {
    Json bad = doc;
    bad.set("schema", Json::str("plum-bench/2"));
    EXPECT_NE(obs::validate_postmortem(bad), "");
  }
  {
    Json bad = doc;
    bad.set("reason", Json::object());  // expr/file/line/msg all missing
    EXPECT_NE(obs::validate_postmortem(bad), "");
  }
  {
    Json bad = doc;
    bad.set("child_stderr", Json::integer(0));
    EXPECT_NE(obs::validate_postmortem(bad), "");
  }
  {
    Json bad = doc;
    bad.set("scope", Json::object());  // capacity/nranks/ranks missing
    EXPECT_NE(obs::validate_postmortem(bad), "");
  }
}

TEST(Metrics, WallSeriesMarkedAndExcludedFromDeterministicView) {
  obs::MetricsRegistry m;
  m.add_sample("imbalance", 1.5);
  m.add_wall_sample_int("depot_stall_ns", 100);
  m.add_wall_sample_int("depot_stall_ns", 250);
  m.add_wall_sample("depot_occupancy", 0.5);

  const Json full = m.to_json();
  const Json* wall = full.find("depot_stall_ns");
  ASSERT_NE(wall, nullptr);
  ASSERT_TRUE(wall->is_object());
  EXPECT_TRUE(wall->find("series")->as_bool());
  EXPECT_TRUE(wall->find("wall")->as_bool());
  ASSERT_EQ(wall->find("samples")->size(), 2u);
  EXPECT_EQ(wall->find("samples")->at(1).as_int(), 250);

  // Deterministic view drops every wall-marked series, nothing else.
  const Json det = m.deterministic_json();
  EXPECT_EQ(det.find("depot_stall_ns"), nullptr);
  EXPECT_EQ(det.find("depot_occupancy"), nullptr);
  ASSERT_NE(det.find("imbalance"), nullptr);
}

TEST(BenchSchema, V2AcceptsWallSeriesObjects) {
  Json doc = valid_v2_report();
  Json run = doc.find("runs")->at(0);
  Json metrics = *run.find("metrics");
  metrics.set("depot_stall_ns",
              Json::object()
                  .set("series", Json::boolean(true))
                  .set("wall", Json::boolean(true))
                  .set("samples", Json::array()
                                      .push(Json::integer(100))
                                      .push(Json::integer(250))));
  run.set("metrics", std::move(metrics));
  doc.set("runs", Json::array().push(std::move(run)));
  EXPECT_EQ(obs::validate_bench_report(doc), "");

  // Same object under schema v1 must be rejected.
  doc.set("schema", Json::str("plum-bench/1"));
  EXPECT_NE(obs::validate_bench_report(doc), "");
}

// --------------------------------------------------------------- plum-mem

TEST(Arena, AlignmentAndBumpReuseAfterReset) {
  obs::Arena arena(1024);
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  void* c = arena.allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  EXPECT_EQ(arena.live_bytes(), 3 + 8 + 16);
  EXPECT_EQ(arena.chunk_count(), 1u);

  // reset() rewinds: the same chunk is handed out again, no new chunk.
  arena.reset();
  EXPECT_EQ(arena.live_bytes(), 0);
  EXPECT_EQ(arena.allocate(3, 1), a);
  EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(Arena, PeakSurvivesReset) {
  obs::Arena arena(256);
  arena.allocate(100, 8);
  arena.allocate(100, 8);
  EXPECT_EQ(arena.peak_live_bytes(), 200);
  arena.reset();
  EXPECT_EQ(arena.live_bytes(), 0);
  EXPECT_EQ(arena.peak_live_bytes(), 200);
  arena.allocate(50, 8);
  EXPECT_EQ(arena.peak_live_bytes(), 200);  // below the old high water
}

TEST(Arena, OversizedAndOveralignedGetDedicatedBlocksFreedOnReset) {
  obs::Arena arena(128);
  EXPECT_NE(arena.allocate(4096, 8), nullptr);  // > chunk size
  EXPECT_EQ(arena.oversized_count(), 1u);
  void* aligned = arena.allocate(64, 128);  // beyond max_align_t
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(aligned) % 128, 0u);
  EXPECT_EQ(arena.oversized_count(), 2u);
  arena.reset();
  EXPECT_EQ(arena.oversized_count(), 0u);
}

TEST(TrackingAllocator, CountsThroughTapOnArenaAndHeapPaths) {
  obs::MemoryTracker mem(2);
  {
    obs::TrackedVec<std::int64_t> v{
        obs::TrackingAllocator<std::int64_t>{mem.scratch(0)}};
    v.reserve(8);
    EXPECT_EQ(mem.stats(0, -1).allocs, 1);
    EXPECT_EQ(mem.stats(0, -1).bytes_requested, 64);
    EXPECT_EQ(mem.live_bytes(0), 64);
  }
  EXPECT_EQ(mem.stats(0, -1).frees, 1);
  EXPECT_EQ(mem.live_bytes(0), 0);
  EXPECT_EQ(mem.arena(0).peak_live_bytes(), 64);

  // Heap path (no arena bound): identical counting on rank 1's row.
  obs::MemScratch heap_scratch = mem.scratch(1);
  heap_scratch.arena = nullptr;
  {
    obs::TrackedVec<std::int64_t> v{
        obs::TrackingAllocator<std::int64_t>{heap_scratch}};
    v.reserve(8);
    EXPECT_EQ(mem.stats(1, -1).allocs, 1);
    EXPECT_EQ(mem.stats(1, -1).bytes_requested, 64);
  }
  EXPECT_EQ(mem.stats(1, -1).frees, 1);
  EXPECT_EQ(mem.live_bytes(1), 0);
  EXPECT_EQ(mem.arena(1).peak_live_bytes(), 0);  // never touched
}

TEST(TrackingAllocator, RebindSharesSourceAndPropagatesOnMove) {
  obs::MemoryTracker mem(1);
  const obs::TrackingAllocator<std::int64_t> a{mem.scratch(0)};
  const obs::TrackingAllocator<char> rebound(a);  // converting ctor
  EXPECT_TRUE(a == rebound);  // same arena => interchangeable
  const obs::TrackingAllocator<std::int64_t> plain;
  EXPECT_TRUE(a != plain);

  // propagate_on_container_move_assignment: the allocator travels with the
  // storage, so arena-backed contents land intact in a default-allocated
  // destination.
  obs::TrackedVec<std::int64_t> src{
      obs::TrackingAllocator<std::int64_t>{mem.scratch(0)}};
  src.assign(16, 7);
  obs::TrackedVec<std::int64_t> dst;
  dst = std::move(src);
  EXPECT_TRUE(dst.get_allocator() == a);
  ASSERT_EQ(dst.size(), 16u);
  EXPECT_EQ(dst.back(), 7);
}

TEST(MemoryTracker, PhaseAttributionHostRowAndClear) {
  obs::MemoryTracker mem(2);
  mem.set_phase("alpha");
  {
    obs::TrackedVec<char> v(100, 'x',
                            obs::TrackingAllocator<char>{mem.scratch(0)});
  }
  mem.set_phase("beta");
  {
    obs::TrackedVec<char> v(40, 'y',
                            obs::TrackingAllocator<char>{mem.host_scratch()});
  }
  mem.clear_phase();
  {
    obs::TrackedVec<char> v(8, 'z',
                            obs::TrackingAllocator<char>{mem.scratch(1)});
  }

  ASSERT_EQ(mem.phase_names().size(), 2u);
  EXPECT_EQ(mem.phase_names()[0], "alpha");
  EXPECT_EQ(mem.stats(0, 0).allocs, 1);
  EXPECT_EQ(mem.stats(0, 0).bytes_requested, 100);
  EXPECT_EQ(mem.stats(0, 0).frees, 1);  // freed while alpha was open
  EXPECT_EQ(mem.stats(0, 0).peak_live_bytes, 100);
  EXPECT_EQ(mem.stats(2, 1).allocs, 1);  // host row, phase beta
  EXPECT_EQ(mem.stats(2, 1).bytes_requested, 40);
  EXPECT_EQ(mem.stats(1, -1).allocs, 1);  // unphased bucket
  EXPECT_EQ(mem.total_live_bytes(), 0);

  // Re-opening a phase reuses the interned id instead of minting a new one.
  mem.set_phase("alpha");
  EXPECT_EQ(mem.phase_names().size(), 2u);

  mem.clear();
  EXPECT_TRUE(mem.phase_names().empty());
  EXPECT_EQ(mem.stats(0, 0).allocs, 0);
}

TEST(MemoryTracker, HeapJsonValidatesAndOnlyWallViewCarriesRss) {
  obs::MemoryTracker mem(2);
  mem.set_phase("alpha");
  {
    obs::TrackedVec<char> v(64, 'x',
                            obs::TrackingAllocator<char>{mem.scratch(0)});
  }
  mem.clear_phase();

  const Json det = mem.deterministic_json();
  EXPECT_EQ(obs::validate_heap_section(det), "");
  EXPECT_EQ(det.find("rss"), nullptr);
  ASSERT_EQ(det.find("rows")->size(), 3u);  // 2 ranks + host
  EXPECT_EQ(det.find("rows")->at(2).find("rank")->as_int(), -1);

  const Json full = mem.to_json();
  EXPECT_EQ(obs::validate_heap_section(full), "");
  ASSERT_NE(full.find("rss"), nullptr);
  EXPECT_GT(full.find("rss")->find("vm_rss_bytes")->as_int(), 0);
}

TEST(MemoryTracker, ValidateHeapSectionRejectsViolations) {
  obs::MemoryTracker mem(1);
  const Json good = mem.deterministic_json();
  ASSERT_EQ(obs::validate_heap_section(good), "");
  {
    Json bad = good;
    bad.set("schema", Json::str("plum-heap/2"));
    EXPECT_NE(obs::validate_heap_section(bad), "");
  }
  {
    Json bad = good;
    bad.set("rows", Json::array());  // row count must be nranks + 1
    EXPECT_NE(obs::validate_heap_section(bad), "");
  }
  {
    Json bad = good;
    Json row = bad.find("rows")->at(0);
    row.set("rank", Json::integer(5));  // out of order / out of range
    Json rows = Json::array();
    rows.push(std::move(row));
    rows.push(bad.find("rows")->at(1));
    bad.set("rows", std::move(rows));
    EXPECT_NE(obs::validate_heap_section(bad), "");
  }
}

TEST(ScopeTail, LatestStreamRecordTriState) {
  const std::string rec = valid_scope_record().dump();
  Json out;

  // No bytes at all.
  EXPECT_EQ(obs::latest_stream_record("", &out), obs::TailStatus::kNone);
  EXPECT_EQ(obs::latest_stream_record("\n", &out), obs::TailStatus::kNone);

  // A complete record, with and without newer torn tails.
  EXPECT_EQ(obs::latest_stream_record(rec + "\n", &out),
            obs::TailStatus::kRecord);
  EXPECT_EQ(out.find("cycle")->as_int(), 0);

  Json newer = valid_scope_record();
  newer.set("cycle", Json::integer(3));
  const std::string two = rec + "\n" + newer.dump() + "\n";
  EXPECT_EQ(obs::latest_stream_record(two, &out), obs::TailStatus::kRecord);
  EXPECT_EQ(out.find("cycle")->as_int(), 3);  // newest wins

  // Mid-append tail (no trailing newline): the older complete record is
  // served; the torn bytes are ignored.
  const std::string torn = two + rec.substr(0, rec.size() / 2);
  EXPECT_EQ(obs::latest_stream_record(torn, &out), obs::TailStatus::kRecord);
  EXPECT_EQ(out.find("cycle")->as_int(), 3);

  // Only torn bytes: kPartial (retryable), never kNone and never a parse
  // error escaping.
  EXPECT_EQ(obs::latest_stream_record(rec.substr(0, 20), &out),
            obs::TailStatus::kPartial);
  // A truncated line that happened to end on '\n' (crash mid-write).
  EXPECT_EQ(obs::latest_stream_record(rec.substr(0, 20) + "\n", &out),
            obs::TailStatus::kPartial);
  // Garbage that parses as JSON but is not a scope record.
  EXPECT_EQ(obs::latest_stream_record("{\"schema\":\"nope\"}\n", &out),
            obs::TailStatus::kPartial);
  // Older complete record survives a truncated newline-terminated tail.
  EXPECT_EQ(
      obs::latest_stream_record(two + rec.substr(0, rec.size() / 2) + "\n",
                                &out),
      obs::TailStatus::kRecord);
  EXPECT_EQ(out.find("cycle")->as_int(), 3);
}

TEST(Rss, ParseProcStatusAndReadSelf) {
  const std::string text =
      "Name:\tunit\nVmPeak:\t  999 kB\nVmRSS:\t    1234 kB\nVmHWM:\t2048 "
      "kB\nThreads:\t1\n";
  const auto s = util::parse_proc_status(text);
  EXPECT_EQ(s.vm_rss_bytes, 1234 * 1024);
  EXPECT_EQ(s.vm_hwm_bytes, 2048 * 1024);

  // Missing fields stay zero instead of inventing values.
  EXPECT_EQ(util::parse_proc_status("Name:\tx\n").vm_rss_bytes, 0);

  const auto self = util::read_rss();
  EXPECT_GT(self.vm_rss_bytes, 0);
  EXPECT_GE(self.vm_hwm_bytes, self.vm_rss_bytes);
}

}  // namespace
}  // namespace plum
