// Unit + property tests for the similarity matrix and the three processor
// reassignment algorithms, including the paper's Theorem 1 bound
// (heuristic objective >= 1/2 optimal) verified over random matrices.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>
#include <set>

#include "remap/mapping.hpp"
#include "remap/matching.hpp"
#include "remap/similarity.hpp"
#include "remap/volume.hpp"
#include "util/rng.hpp"

namespace plum::remap {
namespace {

/// The original recursive Hopcroft-Karp DFS, kept verbatim as the reference
/// the iterative production kernel (remap/matching.cpp) must reproduce
/// exactly — same traversal order, same matching, not just the same size.
int hopcroft_karp_reference(const std::vector<std::vector<Rank>>& adj, Rank n,
                            std::vector<Rank>& match_l) {
  std::vector<Rank> match_r(static_cast<std::size_t>(n), kNoRank);
  match_l.assign(static_cast<std::size_t>(n), kNoRank);
  std::vector<Rank> dist(static_cast<std::size_t>(n));
  constexpr Rank kInfDist = std::numeric_limits<Rank>::max();

  auto bfs = [&]() {
    std::deque<Rank> q;
    for (Rank l = 0; l < n; ++l) {
      if (match_l[static_cast<std::size_t>(l)] == kNoRank) {
        dist[static_cast<std::size_t>(l)] = 0;
        q.push_back(l);
      } else {
        dist[static_cast<std::size_t>(l)] = kInfDist;
      }
    }
    bool found = false;
    while (!q.empty()) {
      const Rank l = q.front();
      q.pop_front();
      for (Rank r : adj[static_cast<std::size_t>(l)]) {
        const Rank next = match_r[static_cast<std::size_t>(r)];
        if (next == kNoRank) {
          found = true;
        } else if (dist[static_cast<std::size_t>(next)] == kInfDist) {
          dist[static_cast<std::size_t>(next)] =
              dist[static_cast<std::size_t>(l)] + 1;
          q.push_back(next);
        }
      }
    }
    return found;
  };

  std::function<bool(Rank)> dfs = [&](Rank l) -> bool {
    for (Rank r : adj[static_cast<std::size_t>(l)]) {
      const Rank next = match_r[static_cast<std::size_t>(r)];
      if (next == kNoRank ||
          (dist[static_cast<std::size_t>(next)] ==
               dist[static_cast<std::size_t>(l)] + 1 &&
           dfs(next))) {
        match_l[static_cast<std::size_t>(l)] = r;
        match_r[static_cast<std::size_t>(r)] = l;
        return true;
      }
    }
    dist[static_cast<std::size_t>(l)] = std::numeric_limits<Rank>::max();
    return false;
  };

  int matched = 0;
  while (bfs()) {
    for (Rank l = 0; l < n; ++l) {
      if (match_l[static_cast<std::size_t>(l)] == kNoRank && dfs(l)) {
        ++matched;
      }
    }
  }
  return matched;
}

bool is_permutation_assignment(const Assignment& a, Rank nprocs, Rank f) {
  std::vector<int> count(static_cast<std::size_t>(nprocs), 0);
  for (Rank p : a.part_to_proc) {
    if (p < 0 || p >= nprocs) return false;
    ++count[static_cast<std::size_t>(p)];
  }
  return std::all_of(count.begin(), count.end(),
                     [&](int c) { return c == f; });
}

SimilarityMatrix random_matrix(Rank P, Rank F, Rng& rng, int density = 60) {
  SimilarityMatrix S(P, P * F);
  for (Rank i = 0; i < P; ++i) {
    for (Rank j = 0; j < P * F; ++j) {
      if (rng.below(100) < static_cast<std::uint64_t>(density)) {
        S.at(i, j) = static_cast<Weight>(rng.below(1000));
      }
    }
  }
  return S;
}

/// Brute-force optimal objective for tiny P (F = 1).
Weight brute_force_optimal(const SimilarityMatrix& S) {
  const Rank P = S.nprocs();
  std::vector<Rank> perm(static_cast<std::size_t>(P));
  for (Rank i = 0; i < P; ++i) perm[static_cast<std::size_t>(i)] = i;
  Weight best = -1;
  do {
    Weight obj = 0;
    for (Rank i = 0; i < P; ++i) obj += S.at(i, perm[static_cast<std::size_t>(i)]);
    best = std::max(best, obj);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

/// Brute-force optimal MaxV bottleneck for tiny P.
double brute_force_bmcm(const SimilarityMatrix& S) {
  const Rank P = S.nprocs();
  std::vector<Weight> R(static_cast<std::size_t>(P)), W(static_cast<std::size_t>(P));
  for (Rank i = 0; i < P; ++i) R[static_cast<std::size_t>(i)] = S.row_sum(i);
  for (Rank j = 0; j < P; ++j) W[static_cast<std::size_t>(j)] = S.col_sum(j);
  std::vector<Rank> perm(static_cast<std::size_t>(P));
  for (Rank i = 0; i < P; ++i) perm[static_cast<std::size_t>(i)] = i;
  double best = 1e30;
  do {
    double bottleneck = 0;
    for (Rank i = 0; i < P; ++i) {
      const Rank j = perm[static_cast<std::size_t>(i)];
      const double sent = static_cast<double>(R[static_cast<std::size_t>(i)] - S.at(i, j));
      const double recv = static_cast<double>(W[static_cast<std::size_t>(j)] - S.at(i, j));
      bottleneck = std::max(bottleneck, std::max(sent, recv));
    }
    best = std::min(best, bottleneck);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Similarity, BuildFromVertexData) {
  // 4 dual vertices on 2 procs mapping into 2 new partitions.
  std::vector<Rank> cur = {0, 0, 1, 1};
  std::vector<Rank> npart = {0, 1, 1, 1};
  std::vector<Weight> w = {5, 3, 7, 2};
  const auto S = SimilarityMatrix::build(cur, npart, w, 2, 2);
  EXPECT_EQ(S.at(0, 0), 5);
  EXPECT_EQ(S.at(0, 1), 3);
  EXPECT_EQ(S.at(1, 0), 0);
  EXPECT_EQ(S.at(1, 1), 9);
  EXPECT_EQ(S.row_sum(0), 8);
  EXPECT_EQ(S.col_sum(1), 12);
  EXPECT_EQ(S.nonzeros(), 3);
}

TEST(Similarity, RowwiseBuildMatchesDense) {
  Rng rng(3);
  std::vector<Rank> cur, npart;
  std::vector<Weight> w;
  for (int v = 0; v < 200; ++v) {
    cur.push_back(static_cast<Rank>(rng.below(4)));
    npart.push_back(static_cast<Rank>(rng.below(4)));
    w.push_back(static_cast<Weight>(rng.below(10) + 1));
  }
  const auto dense = SimilarityMatrix::build(cur, npart, w, 4, 4);
  std::vector<std::vector<Weight>> rows;
  for (Rank p = 0; p < 4; ++p) {
    rows.push_back(SimilarityMatrix::build_row(p, cur, npart, w, 4));
  }
  const auto assembled = SimilarityMatrix::from_rows(rows);
  for (Rank i = 0; i < 4; ++i) {
    for (Rank j = 0; j < 4; ++j) EXPECT_EQ(dense.at(i, j), assembled.at(i, j));
  }
}

TEST(Similarity, SparseRowsRoundTripMatchesDense) {
  Rng rng(7);
  std::vector<Rank> cur, npart;
  std::vector<Weight> w;
  for (int v = 0; v < 300; ++v) {
    cur.push_back(static_cast<Rank>(rng.below(4)));
    npart.push_back(static_cast<Rank>(rng.below(8)));
    w.push_back(static_cast<Weight>(rng.below(10) + 1));
  }
  const auto dense = SimilarityMatrix::build(cur, npart, w, 4, 8);
  std::vector<std::vector<SimilarityCell>> rows;
  int total_cells = 0;
  for (Rank p = 0; p < 4; ++p) {
    rows.push_back(SimilarityMatrix::build_row_sparse(p, cur, npart, w));
    // Sparse rows are sorted by partition, unique, and hold no zeros.
    for (std::size_t k = 0; k < rows.back().size(); ++k) {
      if (k > 0) {
        EXPECT_LT(rows.back()[k - 1].part, rows.back()[k].part);
      }
      EXPECT_NE(rows.back()[k].w, 0);
    }
    total_cells += static_cast<int>(rows.back().size());
  }
  const auto assembled = SimilarityMatrix::from_sparse_rows(rows, 8);
  for (Rank i = 0; i < 4; ++i) {
    for (Rank j = 0; j < 8; ++j) EXPECT_EQ(dense.at(i, j), assembled.at(i, j));
  }
  // The gather moves exactly the nonzeros, not P*P*F weights.
  EXPECT_EQ(total_cells, dense.nonzeros());
}

TEST(Similarity, SparseRowOfIdleProcessorIsEmpty) {
  std::vector<Rank> cur = {0, 0, 1, 1};
  std::vector<Rank> npart = {0, 1, 1, 1};
  std::vector<Weight> w = {5, 3, 7, 2};
  EXPECT_TRUE(SimilarityMatrix::build_row_sparse(3, cur, npart, w).empty());
  const auto row0 = SimilarityMatrix::build_row_sparse(0, cur, npart, w);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0], (SimilarityCell{0, 5}));
  EXPECT_EQ(row0[1], (SimilarityCell{1, 3}));
}

TEST(Mwbg, OptimalOnTinyMatrixMatchesBruteForce) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const auto S = random_matrix(4, 1, rng);
    const auto opt = map_optimal_mwbg(S);
    EXPECT_TRUE(is_permutation_assignment(opt, 4, 1));
    EXPECT_EQ(opt.objective, brute_force_optimal(S)) << "trial " << trial;
  }
}

TEST(Mwbg, DiagonalDominantKeepsIdentity) {
  SimilarityMatrix S(3, 3);
  for (Rank i = 0; i < 3; ++i) S.at(i, i) = 100;
  S.at(0, 1) = 5;
  const auto opt = map_optimal_mwbg(S);
  for (Rank j = 0; j < 3; ++j) EXPECT_EQ(opt.part_to_proc[j], j);
}

TEST(Mwbg, HandlesFGreaterThanOne) {
  Rng rng(6);
  const Rank P = 3, F = 2;
  const auto S = random_matrix(P, F, rng);
  const auto opt = map_optimal_mwbg(S);
  EXPECT_TRUE(is_permutation_assignment(opt, P, F));
  // Optimal must be at least as good as greedy.
  const auto heu = map_heuristic_greedy(S);
  EXPECT_GE(opt.objective, heu.objective);
}

TEST(Greedy, ProducesValidAssignment) {
  Rng rng(7);
  const auto S = random_matrix(8, 1, rng);
  const auto heu = map_heuristic_greedy(S);
  EXPECT_TRUE(is_permutation_assignment(heu, 8, 1));
}

TEST(Greedy, Theorem1HalfOptimalBound) {
  // Paper Theorem 1: heuristic objective > optimal / 2, over many random
  // matrices of varying shape and density.
  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    const Rank P = static_cast<Rank>(2 + rng.below(5));  // 2..6
    const auto S = random_matrix(P, 1, rng, 30 + static_cast<int>(rng.below(70)));
    const auto heu = map_heuristic_greedy(S);
    const auto opt = map_optimal_mwbg(S);
    EXPECT_GE(2 * heu.objective, opt.objective)
        << "P=" << P << " trial=" << trial;
    EXPECT_LE(heu.objective, opt.objective);
  }
}

TEST(Greedy, CorollaryDataMovementAtMostTwiceOptimal) {
  // Corollary to Theorem 1: moved volume <= 2 * optimal moved volume...
  // verified in its equivalent form sum(S) - Heu <= 2 (sum(S) - Opt).
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const auto S = random_matrix(5, 1, rng);
    Weight total = 0;
    for (Rank i = 0; i < 5; ++i) total += S.row_sum(i);
    const auto heu = map_heuristic_greedy(S);
    const auto opt = map_optimal_mwbg(S);
    EXPECT_LE(total - heu.objective, 2 * (total - opt.objective));
  }
}

TEST(Greedy, MatchesPaperExampleShape) {
  // Greedy on a diagonal-heavy matrix assigns every large entry.
  SimilarityMatrix S(4, 4);
  S.at(0, 0) = 50;
  S.at(1, 1) = 40;
  S.at(2, 2) = 30;
  S.at(3, 3) = 20;
  S.at(0, 1) = 10;
  const auto heu = map_heuristic_greedy(S);
  EXPECT_EQ(heu.objective, 140);
}

TEST(Matching, IterativeHopcroftKarpIdenticalToRecursiveReference) {
  // The explicit-stack DFS must be observationally identical to the old
  // recursive one: identical matching vectors on random graphs of varying
  // density, including graphs with no perfect matching.
  Rng rng(21);
  for (int trial = 0; trial < 300; ++trial) {
    const Rank n = static_cast<Rank>(1 + rng.below(12));
    const int density = 5 + static_cast<int>(rng.below(95));
    std::vector<std::vector<Rank>> adj(static_cast<std::size_t>(n));
    for (Rank l = 0; l < n; ++l) {
      for (Rank r = 0; r < n; ++r) {
        if (rng.below(100) < static_cast<std::uint64_t>(density)) {
          adj[static_cast<std::size_t>(l)].push_back(r);
        }
      }
    }
    std::vector<Rank> got, want;
    const int got_n = hopcroft_karp(adj, n, got);
    const int want_n = hopcroft_karp_reference(adj, n, want);
    EXPECT_EQ(got_n, want_n) << "n=" << n << " trial=" << trial;
    EXPECT_EQ(got, want) << "n=" << n << " trial=" << trial;
  }
}

TEST(Matching, EmptyAndCompleteGraphs) {
  std::vector<Rank> m;
  EXPECT_EQ(hopcroft_karp({{}, {}}, 2, m), 0);
  EXPECT_EQ(m, (std::vector<Rank>{kNoRank, kNoRank}));

  const Rank n = 40;  // deep augmenting paths exercise the explicit stack
  std::vector<std::vector<Rank>> adj(static_cast<std::size_t>(n));
  for (Rank l = 0; l < n; ++l) {
    // Every left vertex prefers the same few right vertices first, forcing
    // long alternating chains before the matching completes.
    for (Rank r = 0; r < n; ++r) adj[static_cast<std::size_t>(l)].push_back(r % n);
  }
  EXPECT_EQ(hopcroft_karp(adj, n, m), n);
  std::vector<Rank> ref;
  EXPECT_EQ(hopcroft_karp_reference(adj, n, ref), n);
  EXPECT_EQ(m, ref);
}

TEST(Bmcm, OptimalBottleneckMatchesBruteForce) {
  Rng rng(10);
  for (int trial = 0; trial < 30; ++trial) {
    const auto S = random_matrix(4, 1, rng);
    const auto bm = map_optimal_bmcm(S);
    EXPECT_TRUE(is_permutation_assignment(bm, 4, 1));
    const auto vol = evaluate_assignment(S, bm);
    EXPECT_NEAR(vol.maxv_cost, brute_force_bmcm(S), 1e-9) << trial;
  }
}

TEST(Bmcm, NeverWorseBottleneckThanMwbg) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const auto S = random_matrix(6, 1, rng);
    const auto bm = evaluate_assignment(S, map_optimal_bmcm(S));
    const auto mw = evaluate_assignment(S, map_optimal_mwbg(S));
    EXPECT_LE(bm.maxv_cost, mw.maxv_cost + 1e-9);
  }
}

TEST(Bmcm, AlphaBetaAsymmetry) {
  // With beta >> alpha receives dominate; the mapper must adapt.
  Rng rng(12);
  const auto S = random_matrix(5, 1, rng);
  const auto sym = map_optimal_bmcm(S, 1.0, 1.0);
  const auto asym = map_optimal_bmcm(S, 1.0, 8.0);
  const auto v_asym = evaluate_assignment(S, asym, 1.0, 8.0);
  const auto v_sym = evaluate_assignment(S, sym, 1.0, 8.0);
  EXPECT_LE(v_asym.maxv_cost, v_sym.maxv_cost + 1e-9);
}

TEST(Volume, IdentityAssignmentOnDiagonalMatrixMovesNothing) {
  SimilarityMatrix S(3, 3);
  for (Rank i = 0; i < 3; ++i) S.at(i, i) = 10;
  const auto vol = evaluate_assignment(S, map_identity(S));
  EXPECT_EQ(vol.total_elems, 0);
  EXPECT_EQ(vol.total_sets, 0);
  EXPECT_EQ(vol.max_sent_or_recv, 0);
}

TEST(Volume, CountsMovedSetsAndElements) {
  SimilarityMatrix S(2, 2);
  S.at(0, 0) = 5;
  S.at(0, 1) = 3;  // moves to proc 1
  S.at(1, 1) = 7;
  S.at(1, 0) = 2;  // moves to proc 0
  const auto vol = evaluate_assignment(S, map_identity(S));
  EXPECT_EQ(vol.total_elems, 5);
  EXPECT_EQ(vol.total_sets, 2);
  EXPECT_EQ(vol.max_sent, 3);
  EXPECT_EQ(vol.max_recv, 3);
  EXPECT_EQ(vol.max_sent_or_recv, 3);
}

TEST(Volume, ConservationSentEqualsReceived) {
  Rng rng(13);
  const auto S = random_matrix(6, 1, rng);
  const auto heu = map_heuristic_greedy(S);
  const auto vol = evaluate_assignment(S, heu);
  // Total moved counted from the send side equals objective complement.
  Weight total = 0;
  for (Rank i = 0; i < 6; ++i) total += S.row_sum(i);
  EXPECT_EQ(vol.total_elems, total - heu.objective);
}

TEST(ReassignmentTimes, HeuristicFasterThanOptimalAtScale) {
  // The paper's Table 2 shows ~10x gap; on modern hardware we only assert
  // the ordering to keep the test robust.
  Rng rng(14);
  const auto S = random_matrix(64, 1, rng, 90);
  const auto heu = map_heuristic_greedy(S);
  const auto opt = map_optimal_mwbg(S);
  EXPECT_LE(heu.objective, opt.objective);
  EXPECT_GE(opt.objective, 1);  // sanity: something assigned
}

TEST(Bmcm, RejectsFGreaterThanOne) {
  SimilarityMatrix S(2, 4);  // F = 2
  EXPECT_DEATH(map_optimal_bmcm(S), "F = 1");
}

TEST(Greedy, TiesConsumedInEnumerationOrder) {
  // Regression for the radix_sort_descending stability bug: the mapper
  // enumerates entries row-major ((0,0), (0,1), ..., (1,0), ...), and the
  // paper's stable descending sort must hand tied entries back in that
  // order. With the old reverse-only sort, ties came back in *reversed*
  // enumeration order and S(1,0) below won partition 0 instead of S(0,0).
  SimilarityMatrix S(2, 2);
  S.at(0, 0) = 10;
  S.at(1, 0) = 10;
  const auto heu = map_heuristic_greedy(S);
  EXPECT_EQ(heu.objective, 10);
  EXPECT_EQ(heu.part_to_proc[0], 0);  // first tied entry in row-major order
  EXPECT_EQ(heu.part_to_proc[1], 1);  // proc 1 takes the leftover partition

  // Larger tied block: row-major order assigns the diagonal of the first
  // F-feasible entries, i.e. partition j -> processor j.
  SimilarityMatrix T(3, 3);
  for (Rank i = 0; i < 3; ++i) {
    for (Rank j = 0; j < 3; ++j) T.at(i, j) = 7;
  }
  const auto a = map_heuristic_greedy(T);
  for (Rank j = 0; j < 3; ++j) EXPECT_EQ(a.part_to_proc[j], j);
}

TEST(Greedy, DeterministicOnTies) {
  // Equal entries: the radix sort's stable order fixes the outcome.
  SimilarityMatrix S(3, 3);
  for (Rank i = 0; i < 3; ++i) {
    for (Rank j = 0; j < 3; ++j) S.at(i, j) = 10;
  }
  const auto a = map_heuristic_greedy(S);
  const auto b = map_heuristic_greedy(S);
  EXPECT_EQ(a.part_to_proc, b.part_to_proc);
  EXPECT_EQ(a.objective, 30);
}

TEST(Similarity, FAccessor) {
  SimilarityMatrix S(4, 8);
  EXPECT_EQ(S.f(), 2);
  EXPECT_EQ(S.nprocs(), 4);
  EXPECT_EQ(S.nparts(), 8);
}

}  // namespace
}  // namespace plum::remap
