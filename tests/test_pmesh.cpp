// Tests for the distributed mesh and parallel adaption: construction
// invariants, SPL symmetry, parallel marking equivalence with the serial
// kernel, parallel refinement + SPL repair equivalence with a fresh
// distribution of the serially refined mesh.

#include <gtest/gtest.h>

#include <numeric>

#include "adapt/adaptor.hpp"
#include "mesh/box_mesh.hpp"
#include "partition/multilevel.hpp"
#include "pmesh/dist_mesh.hpp"
#include "pmesh/finalize.hpp"
#include "pmesh/migrate.hpp"
#include "pmesh/parallel_coarsen.hpp"
#include "pmesh/parallel_adapt.hpp"
#include "util/rng.hpp"

namespace plum::pmesh {
namespace {

using mesh::TetMesh;

partition::PartVec partition_roots(const TetMesh& global, Rank nranks) {
  partition::MultilevelOptions opt;
  opt.nparts = nranks;
  auto dual = global.build_initial_dual();
  return partition::partition(dual, opt).part;
}

/// Seeds per-rank local marks from a global mark vector via edge_global.
std::vector<std::vector<char>> localize_marks(const DistMesh& dm,
                                              const std::vector<char>& global) {
  std::vector<std::vector<char>> out(static_cast<std::size_t>(dm.nranks()));
  for (Rank r = 0; r < dm.nranks(); ++r) {
    const auto& lm = dm.local(r);
    auto& marks = out[static_cast<std::size_t>(r)];
    marks.assign(static_cast<std::size_t>(lm.mesh.num_edges()), 0);
    for (Index e = 0; e < static_cast<Index>(lm.edge_global.size()); ++e) {
      if (global[static_cast<std::size_t>(lm.edge_global[e])]) {
        marks[static_cast<std::size_t>(e)] = 1;
      }
    }
  }
  return out;
}

TEST(DistMesh, ElementsPartitionExactly) {
  const auto global = mesh::make_box_mesh(mesh::small_box(3));
  const auto part = partition_roots(global, 4);
  DistMesh dm(global, part, 4);
  dm.validate();
  EXPECT_EQ(dm.total_active_elements(), global.num_active_elements());
  for (Rank r = 0; r < 4; ++r) {
    EXPECT_GT(dm.local(r).mesh.num_active_elements(), 0);
  }
}

TEST(DistMesh, SharedFractionIsSmall) {
  const auto global = mesh::make_box_mesh(mesh::small_box(6));
  const auto part = partition_roots(global, 4);
  DistMesh dm(global, part, 4);
  // Paper: extra storage for shared objects was < 10% of serial (on a 61k
  // element mesh). Our 1.3k-element test box has a much worse
  // surface/volume ratio; just require < 45%.
  EXPECT_LT(dm.shared_object_fraction(), 0.45);
  EXPECT_GT(dm.shared_object_fraction(), 0.0);
}

TEST(DistMesh, DistributesAdaptedMesh) {
  auto global = mesh::make_box_mesh(mesh::small_box(2));
  adapt::MeshAdaptor ad(&global);
  std::vector<char> marks(static_cast<std::size_t>(global.num_edges()), 0);
  for (Index e = 0; e < global.num_edges(); e += 3) marks[e] = 1;
  ad.mark(marks);
  ad.refine();

  const auto part = partition_roots(global, 3);
  DistMesh dm(global, part, 3);
  dm.validate();
  EXPECT_EQ(dm.total_active_elements(), global.num_active_elements());

  // Refinement forests came along: per-rank root weights match global.
  const auto gw = global.root_weights();
  for (Rank r = 0; r < 3; ++r) {
    const auto lw = dm.local(r).mesh.root_weights();
    for (Index lr = 0; lr < static_cast<Index>(lw.wcomp.size()); ++lr) {
      const Index groot = dm.local(r).root_global[static_cast<std::size_t>(lr)];
      EXPECT_EQ(lw.wcomp[static_cast<std::size_t>(lr)],
                gw.wcomp[static_cast<std::size_t>(groot)]);
      EXPECT_EQ(lw.wremap[static_cast<std::size_t>(lr)],
                gw.wremap[static_cast<std::size_t>(groot)]);
    }
  }
}

TEST(ParallelMark, MatchesSerialMarking) {
  const auto global = mesh::make_box_mesh(mesh::small_box(3));
  const auto part = partition_roots(global, 4);
  DistMesh dm(global, part, 4);

  // Global marks that force cross-partition propagation.
  Rng rng(17);
  std::vector<char> gmarks(static_cast<std::size_t>(global.num_edges()), 0);
  for (Index e = 0; e < global.num_edges(); ++e) {
    if (rng.uniform() < 0.08) gmarks[static_cast<std::size_t>(e)] = 1;
  }
  const auto serial = adapt::propagate_marks(global, gmarks);

  rt::Engine eng(4);
  const auto pr = parallel_mark(dm, eng, localize_marks(dm, gmarks));
  EXPECT_GE(pr.comm_rounds, 1);

  // Every local copy's final mark equals the serial global mark.
  for (Rank r = 0; r < 4; ++r) {
    const auto& lm = dm.local(r);
    const auto& res = pr.per_rank[static_cast<std::size_t>(r)];
    for (Index e = 0; e < static_cast<Index>(lm.edge_global.size()); ++e) {
      if (lm.mesh.edge_elements(e).empty()) continue;
      EXPECT_EQ(static_cast<bool>(res.edge_marked[static_cast<std::size_t>(e)]),
                static_cast<bool>(
                    serial.edge_marked[static_cast<std::size_t>(lm.edge_global[e])]))
          << "rank " << r << " edge " << e;
    }
  }
}

TEST(ParallelMark, NoMarksNoTraffic) {
  const auto global = mesh::make_box_mesh(mesh::small_box(2));
  const auto part = partition_roots(global, 2);
  DistMesh dm(global, part, 2);
  rt::Engine eng(2);
  std::vector<std::vector<char>> seeds(2);
  const auto pr = parallel_mark(dm, eng, seeds);
  EXPECT_EQ(pr.marks_exchanged, 0);
}

class ParallelRefineSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Rank>> {};

TEST_P(ParallelRefineSweep, MatchesSerialRefinementAndRepairsSpls) {
  const auto [seed, nranks] = GetParam();
  auto global = mesh::make_box_mesh(mesh::small_box(3));
  const auto part = partition_roots(global, nranks);
  DistMesh dm(global, part, nranks);

  Rng rng(seed);
  std::vector<char> gmarks(static_cast<std::size_t>(global.num_edges()), 0);
  for (Index e = 0; e < global.num_edges(); ++e) {
    if (rng.uniform() < 0.10) gmarks[static_cast<std::size_t>(e)] = 1;
  }

  // Parallel path.
  rt::Engine eng(nranks);
  const auto pm = parallel_mark(dm, eng, localize_marks(dm, gmarks));
  const auto pf = parallel_refine(dm, eng, pm);
  dm.validate();

  // Serial path on the global mirror + fresh distribution.
  adapt::MeshAdaptor ad(&global);
  ad.mark(gmarks);
  ad.refine();
  DistMesh fresh(global, part, nranks);

  EXPECT_EQ(dm.total_active_elements(), global.num_active_elements());
  std::int64_t work = 0;
  for (Rank r = 0; r < nranks; ++r) {
    const auto& a = dm.local(r).mesh;
    const auto& b = fresh.local(r).mesh;
    EXPECT_EQ(a.num_active_elements(), b.num_active_elements()) << r;
    EXPECT_EQ(a.num_vertices(), b.num_vertices()) << r;
    EXPECT_EQ(a.num_active_edges(), b.num_active_edges()) << r;
    EXPECT_EQ(a.num_active_bfaces(), b.num_active_bfaces()) << r;
    // SPL repair reproduced exactly what a fresh distribution computes.
    EXPECT_EQ(dm.local(r).shared_edges.size(),
              fresh.local(r).shared_edges.size())
        << r;
    EXPECT_EQ(dm.local(r).shared_verts.size(),
              fresh.local(r).shared_verts.size())
        << r;
    work += pf.work_per_rank[static_cast<std::size_t>(r)];
  }
  // Total subdivision work equals total children created globally.
  Index serial_children = 0;
  for (Index t = 0; t < global.num_elements(); ++t) {
    const auto& el = global.element(t);
    if (el.alive && !el.is_leaf() && el.level == 0) {
      serial_children += el.num_children;
    }
  }
  EXPECT_EQ(work, serial_children);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelRefineSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values<Rank>(2, 4, 7)));

TEST(ParallelRefine, TwoSuccessiveAdaptions) {
  // A second parallel adaption exercises SPLs created by the first.
  auto global = mesh::make_box_mesh(mesh::small_box(2));
  const auto part = partition_roots(global, 3);
  DistMesh dm(global, part, 3);
  rt::Engine eng(3);
  Rng rng(99);

  for (int round = 0; round < 2; ++round) {
    // Mark a random subset of each rank's active local edges; shared copies
    // are seeded on one rank only — propagation must mirror them.
    std::vector<std::vector<char>> seeds(3);
    for (Rank r = 0; r < 3; ++r) {
      auto& s = seeds[static_cast<std::size_t>(r)];
      s.assign(static_cast<std::size_t>(dm.local(r).mesh.num_edges()), 0);
      for (Index e = 0; e < dm.local(r).mesh.num_edges(); ++e) {
        if (!dm.local(r).mesh.edge_elements(e).empty() &&
            rng.uniform() < 0.05) {
          s[static_cast<std::size_t>(e)] = 1;
        }
      }
    }
    const auto pm = parallel_mark(dm, eng, seeds);
    parallel_refine(dm, eng, pm);
    dm.validate();
  }
  EXPECT_GT(dm.total_active_elements(), 6 * 8);
}

TEST(Finalize, GatherReassemblesInitialDistribution) {
  const auto global = mesh::make_box_mesh(mesh::small_box(3));
  const auto part = partition_roots(global, 4);
  DistMesh dm(global, part, 4);
  rt::Engine eng(4);
  const auto fin = finalize_gather(dm, eng);
  fin.global.validate();
  EXPECT_EQ(fin.global.num_vertices(), global.num_vertices());
  EXPECT_EQ(fin.global.num_edges(), global.num_edges());
  EXPECT_EQ(fin.global.num_active_elements(), global.num_active_elements());
  EXPECT_EQ(fin.global.num_active_bfaces(), global.num_active_bfaces());
  EXPECT_NEAR(fin.global.total_volume(), global.total_volume(), 1e-12);
  EXPECT_EQ(fin.global.num_initial_elements(),
            global.num_initial_elements());
  EXPECT_EQ(fin.global.num_initial_edges(), global.num_initial_edges());
  // Numbering pushed cross-rank traffic through the engine.
  EXPECT_GT(eng.ledger().total_bytes(), 0);
}

TEST(Finalize, GatherAfterParallelAdaption) {
  auto global = mesh::make_box_mesh(mesh::small_box(3));
  const auto part = partition_roots(global, 5);
  DistMesh dm(global, part, 5);
  rt::Engine eng(5);

  Rng rng(31);
  std::vector<char> gmarks(static_cast<std::size_t>(global.num_edges()), 0);
  for (Index e = 0; e < global.num_edges(); ++e) {
    if (rng.uniform() < 0.07) gmarks[static_cast<std::size_t>(e)] = 1;
  }
  const auto pm = parallel_mark(dm, eng, localize_marks(dm, gmarks));
  parallel_refine(dm, eng, pm);

  // Equivalent serial refinement for reference counts.
  adapt::MeshAdaptor ad(&global);
  ad.mark(gmarks);
  ad.refine();

  const auto fin = finalize_gather(dm, eng);
  fin.global.validate();
  EXPECT_EQ(fin.global.num_vertices(), global.num_vertices());
  EXPECT_EQ(fin.global.num_active_elements(), global.num_active_elements());
  EXPECT_EQ(fin.global.num_active_edges(), global.num_active_edges());
  EXPECT_EQ(fin.global.num_active_bfaces(), global.num_active_bfaces());
  EXPECT_NEAR(fin.global.total_volume(), global.total_volume(), 1e-12);

  // Refinement forest survived the gather: weights agree in aggregate.
  const auto gw = fin.global.root_weights();
  const auto rw = global.root_weights();
  Weight sum_fin = 0, sum_ref = 0;
  for (Weight x : gw.wremap) sum_fin += x;
  for (Weight x : rw.wremap) sum_ref += x;
  EXPECT_EQ(sum_fin, sum_ref);
}

TEST(Finalize, VertexMapsAgreeAcrossSharedCopies) {
  const auto global = mesh::make_box_mesh(mesh::small_box(2));
  const auto part = partition_roots(global, 3);
  DistMesh dm(global, part, 3);
  rt::Engine eng(3);
  const auto fin = finalize_gather(dm, eng);
  // Every shared vertex copy got the same global number.
  for (Rank r = 0; r < 3; ++r) {
    for (const auto& [lid, spl] : dm.local(r).shared_verts) {
      for (const auto& c : spl) {
        EXPECT_EQ(fin.vert_global[static_cast<std::size_t>(r)]
                                 [static_cast<std::size_t>(lid)],
                  fin.vert_global[static_cast<std::size_t>(c.rank)]
                                 [static_cast<std::size_t>(c.remote_id)]);
      }
    }
  }
}

TEST(Migrate, MovesSubtreesAndChargesTraffic) {
  auto global = mesh::make_box_mesh(mesh::small_box(2));
  adapt::MeshAdaptor ad(&global);
  std::vector<char> marks(static_cast<std::size_t>(global.num_edges()), 0);
  for (Index e = 0; e < global.num_edges(); e += 5) marks[e] = 1;
  ad.mark(marks);
  ad.refine();

  const Rank P = 3;
  const auto part = partition_roots(global, P);
  DistMesh dm(global, part, P);
  rt::Engine eng(P);

  // New assignment: rotate every root one rank forward.
  partition::PartVec new_part(part.size());
  for (std::size_t v = 0; v < part.size(); ++v) {
    new_part[v] = (part[v] + 1) % P;
  }
  const auto before_ledger = eng.ledger().total_bytes();
  const auto stats = migrate(dm, eng, new_part);
  dm.validate();

  // Everything moved: every root changed rank.
  EXPECT_EQ(stats.roots_moved, global.num_initial_elements());
  EXPECT_EQ(stats.elements_moved,
            static_cast<std::int64_t>(global.num_elements()));
  EXPECT_GT(eng.ledger().total_bytes(), before_ledger);

  // The rebuilt distribution matches a fresh one under the new partition.
  DistMesh fresh(global, new_part, P);
  for (Rank r = 0; r < P; ++r) {
    EXPECT_EQ(dm.local(r).mesh.num_active_elements(),
              fresh.local(r).mesh.num_active_elements());
    EXPECT_EQ(dm.local(r).mesh.num_vertices(),
              fresh.local(r).mesh.num_vertices());
  }
}

TEST(Migrate, NoopAssignmentMovesNothing) {
  const auto global = mesh::make_box_mesh(mesh::small_box(2));
  const Rank P = 4;
  const auto part = partition_roots(global, P);
  DistMesh dm(global, part, P);
  rt::Engine eng(P);
  const auto stats = migrate(dm, eng, part);
  EXPECT_EQ(stats.roots_moved, 0);
  EXPECT_EQ(stats.elements_moved, 0);
  dm.validate();
}

TEST(Migrate, RootGlobalKeepsOriginalNumbering) {
  const auto global = mesh::make_box_mesh(mesh::small_box(2));
  const Rank P = 3;
  const auto part = partition_roots(global, P);
  DistMesh dm(global, part, P);
  rt::Engine eng(P);
  partition::PartVec new_part(part.size());
  for (std::size_t v = 0; v < part.size(); ++v) {
    new_part[v] = (part[v] + 2) % P;
  }
  migrate(dm, eng, new_part);
  // Every original root id appears exactly once, on its new rank.
  std::vector<int> seen(part.size(), 0);
  for (Rank r = 0; r < P; ++r) {
    for (Index g : dm.local(r).root_global) {
      ASSERT_GE(g, 0);
      ASSERT_LT(g, static_cast<Index>(part.size()));
      EXPECT_EQ(new_part[static_cast<std::size_t>(g)], r);
      ++seen[static_cast<std::size_t>(g)];
    }
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(ParallelCoarsen, MatchesSerialCoarsening) {
  // Refine globally, distribute, coarsen a spatial half in parallel and
  // serially; active element counts must agree.
  auto make_refined = [] {
    auto m = mesh::make_box_mesh(mesh::small_box(2));
    adapt::MeshAdaptor ad(&m);
    std::vector<char> all(static_cast<std::size_t>(m.num_edges()), 1);
    ad.mark(all);
    ad.refine();
    return m;
  };
  auto is_low_half = [](const mesh::TetMesh& m, Index e) {
    const auto& ed = m.edge(e);
    return m.vertex(ed.v0).pos.z < 0.5 && m.vertex(ed.v1).pos.z < 0.5;
  };

  // Serial reference.
  auto serial = make_refined();
  {
    std::vector<char> cm(static_cast<std::size_t>(serial.num_edges()), 0);
    for (Index e = 0; e < serial.num_edges(); ++e) {
      if (!serial.edge_elements(e).empty() && is_low_half(serial, e)) {
        cm[static_cast<std::size_t>(e)] = 1;
      }
    }
    adapt::coarsen_mesh(serial, cm);
  }

  // Parallel path.
  auto global = make_refined();
  const Rank P = 3;
  const auto part = partition_roots(global, P);
  DistMesh dm(global, part, P);
  rt::Engine eng(P);
  std::vector<std::vector<char>> marks(static_cast<std::size_t>(P));
  for (Rank r = 0; r < P; ++r) {
    const auto& lm = dm.local(r).mesh;
    marks[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(lm.num_edges()), 0);
    for (Index e = 0; e < lm.num_edges(); ++e) {
      if (!lm.edge_elements(e).empty() && is_low_half(lm, e)) {
        marks[static_cast<std::size_t>(r)][static_cast<std::size_t>(e)] = 1;
      }
    }
  }
  const auto res = parallel_coarsen(dm, eng, marks);
  dm.validate();
  EXPECT_LT(res.elements_after, res.elements_before);
  EXPECT_EQ(res.elements_after, serial.num_active_elements());
}

TEST(ParallelCoarsen, SolutionSurvivesCoarsening) {
  auto global = mesh::make_box_mesh(mesh::small_box(1));
  adapt::MeshAdaptor ad(&global);
  std::vector<char> all(static_cast<std::size_t>(global.num_edges()), 1);
  ad.mark(all);
  ad.refine();

  const Rank P = 2;
  const auto part = partition_roots(global, P);
  DistMesh dm(global, part, P);
  rt::Engine eng(P);

  // Linear density field: exact under both interpolation and restriction.
  std::vector<std::vector<solver::State>> states(P);
  for (Rank r = 0; r < P; ++r) {
    const auto& lm = dm.local(r).mesh;
    states[static_cast<std::size_t>(r)].resize(
        static_cast<std::size_t>(lm.num_vertices()));
    for (Index v = 0; v < lm.num_vertices(); ++v) {
      const auto& p = lm.vertex(v).pos;
      states[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)] = {
          1.0 + p.x, 0, 0, 0, 2.5};
    }
  }

  std::vector<std::vector<char>> marks(static_cast<std::size_t>(P));
  for (Rank r = 0; r < P; ++r) {
    marks[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(dm.local(r).mesh.num_edges()), 1);
  }
  parallel_coarsen(dm, eng, marks, &states);
  dm.validate();
  EXPECT_EQ(dm.total_active_elements(), 6);  // fully coarsened

  for (Rank r = 0; r < P; ++r) {
    const auto& lm = dm.local(r).mesh;
    for (Index v = 0; v < lm.num_vertices(); ++v) {
      const auto& p = lm.vertex(v).pos;
      EXPECT_NEAR(
          states[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)][0],
          1.0 + p.x, 1e-12);
    }
  }
}

}  // namespace
}  // namespace plum::pmesh
