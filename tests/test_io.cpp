// Tests for mesh I/O round-tripping, VTK export structure, and the table /
// similarity printers.

#include <gtest/gtest.h>

#include <sstream>

#include "adapt/adaptor.hpp"
#include "io/mesh_io.hpp"
#include "io/snapshot.hpp"
#include "io/table.hpp"
#include "io/vtk.hpp"
#include "mesh/box_mesh.hpp"
#include "remap/mapping.hpp"

namespace plum::io {
namespace {

TEST(MeshIo, RoundTripPreservesTopologyAndGeometry) {
  const auto m = mesh::make_box_mesh(mesh::small_box(2));
  std::stringstream ss;
  write_mesh(ss, m);
  const auto back = read_mesh(ss);
  EXPECT_EQ(back.num_vertices(), m.num_vertices());
  EXPECT_EQ(back.num_initial_elements(), m.num_initial_elements());
  EXPECT_EQ(back.num_edges(), m.num_edges());
  EXPECT_EQ(back.num_active_bfaces(), m.num_active_bfaces());
  EXPECT_NEAR(back.total_volume(), m.total_volume(), 1e-12);
  for (Index v = 0; v < m.num_vertices(); ++v) {
    EXPECT_NEAR(norm(back.vertex(v).pos - m.vertex(v).pos), 0.0, 1e-15);
  }
}

TEST(MeshIo, RejectsBadMagic) {
  std::stringstream ss("gibberish 7\n");
  EXPECT_DEATH(read_mesh(ss), "plum-tet");
}

TEST(Vtk, ExportContainsLeafCellsAndFields) {
  const auto m = mesh::make_box_mesh(mesh::small_box(1));
  VtkFields f;
  f.vertex_scalar.assign(static_cast<std::size_t>(m.num_vertices()), 2.5);
  f.root_partition.assign(
      static_cast<std::size_t>(m.num_initial_elements()), 3);
  std::stringstream ss;
  write_vtk(ss, m, f);
  const std::string out = ss.str();
  EXPECT_NE(out.find("DATASET UNSTRUCTURED_GRID"), std::string::npos);
  EXPECT_NE(out.find("CELLS 6 30"), std::string::npos);
  EXPECT_NE(out.find("SCALARS density double 1"), std::string::npos);
  EXPECT_NE(out.find("SCALARS processor int 1"), std::string::npos);
}

TEST(Table, AlignsColumnsAndFormats) {
  Table t({"P", "time"});
  t.add_row({"2", Table::fmt(0.12345, 3)});
  t.add_row({"64", Table::fmt(std::int64_t{42})});
  std::stringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("P"), std::string::npos);
  EXPECT_NE(out.find("0.123"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(SimilarityPrinter, MarksAssignedEntries) {
  remap::SimilarityMatrix S(2, 2);
  S.at(0, 0) = 7;
  S.at(1, 1) = 9;
  const auto a = remap::map_identity(S);
  std::stringstream ss;
  print_similarity(ss, S, &a.part_to_proc);
  const std::string out = ss.str();
  EXPECT_NE(out.find("[7]"), std::string::npos);
  EXPECT_NE(out.find("[9]"), std::string::npos);
  EXPECT_NE(out.find("R=7"), std::string::npos);
}

TEST(Snapshot, RoundTripsAdaptedMeshWithForest) {
  auto m = mesh::make_box_mesh(mesh::small_box(2));
  adapt::MeshAdaptor ad(&m);
  std::vector<char> marks(static_cast<std::size_t>(m.num_edges()), 0);
  for (Index e = 0; e < m.num_edges(); e += 4) marks[e] = 1;
  ad.mark(marks);
  ad.refine();

  std::stringstream ss;
  write_snapshot(ss, m);
  const auto snap = read_snapshot(ss);
  snap.mesh.validate();
  EXPECT_EQ(snap.mesh.num_vertices(), m.num_vertices());
  EXPECT_EQ(snap.mesh.num_edges(), m.num_edges());
  EXPECT_EQ(snap.mesh.num_elements(), m.num_elements());
  EXPECT_EQ(snap.mesh.num_active_elements(), m.num_active_elements());
  EXPECT_EQ(snap.mesh.num_active_bfaces(), m.num_active_bfaces());
  EXPECT_EQ(snap.mesh.num_initial_elements(), m.num_initial_elements());
  const auto wa = snap.mesh.root_weights();
  const auto wb = m.root_weights();
  EXPECT_EQ(wa.wcomp, wb.wcomp);
  EXPECT_EQ(wa.wremap, wb.wremap);
  EXPECT_TRUE(snap.solution.empty());
}

TEST(Snapshot, RestartedMeshCanCoarsenBelowSnapshotLevel) {
  // The whole point of storing the forest: a restart can coarsen back.
  auto m = mesh::make_box_mesh(mesh::small_box(1));
  adapt::MeshAdaptor ad(&m);
  std::vector<char> all(static_cast<std::size_t>(m.num_edges()), 1);
  ad.mark(all);
  ad.refine();

  std::stringstream ss;
  write_snapshot(ss, m);
  auto snap = read_snapshot(ss);

  adapt::MeshAdaptor ad2(&snap.mesh);
  std::vector<char> cm(static_cast<std::size_t>(snap.mesh.num_edges()), 1);
  ad2.coarsen(cm);
  snap.mesh.validate();
  EXPECT_EQ(snap.mesh.num_active_elements(), 6);
}

TEST(Snapshot, CarriesSolutionBlock) {
  auto m = mesh::make_box_mesh(mesh::small_box(1));
  std::vector<std::array<double, 5>> sol(
      static_cast<std::size_t>(m.num_vertices()));
  for (std::size_t v = 0; v < sol.size(); ++v) {
    sol[v] = {1.0 + v, 0.5, -0.25, 0.125, 2.0};
  }
  std::stringstream ss;
  write_snapshot(ss, m, sol);
  const auto snap = read_snapshot(ss);
  ASSERT_EQ(snap.solution.size(), sol.size());
  for (std::size_t v = 0; v < sol.size(); ++v) {
    for (int c = 0; c < 5; ++c) EXPECT_DOUBLE_EQ(snap.solution[v][c], sol[v][c]);
  }
}

TEST(Snapshot, RejectsBadHeader) {
  std::stringstream ss("plum-snap 99\n");
  EXPECT_DEATH(read_snapshot(ss), "plum-snap");
}

}  // namespace
}  // namespace plum::io
