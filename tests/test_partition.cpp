// Unit + property tests for the multilevel partitioner, HEM coarsening,
// GGGP initial partitioning, k-way refinement, and the RCB baseline.

#include <gtest/gtest.h>

#include "graph/dual.hpp"
#include "mesh/box_mesh.hpp"
#include "partition/hem.hpp"
#include "partition/initpart.hpp"
#include "partition/multilevel.hpp"
#include "partition/rcb.hpp"
#include "partition/refine_kway.hpp"

namespace plum::partition {
namespace {

graph::Csr grid_graph(Index nx, Index ny) {
  std::vector<std::pair<Index, Index>> edges;
  auto id = [&](Index i, Index j) { return j * nx + i; };
  for (Index j = 0; j < ny; ++j) {
    for (Index i = 0; i < nx; ++i) {
      if (i + 1 < nx) edges.emplace_back(id(i, j), id(i + 1, j));
      if (j + 1 < ny) edges.emplace_back(id(i, j), id(i, j + 1));
    }
  }
  return graph::Csr::from_edges(nx * ny, edges);
}

graph::Csr box_dual(int n) {
  return mesh::make_box_mesh(mesh::small_box(n)).build_initial_dual();
}

TEST(Hem, HalvesVertexCountRoughly) {
  const auto g = grid_graph(20, 20);
  Rng rng(1);
  const auto level = coarsen_hem(g, rng);
  level.graph.validate();
  EXPECT_LT(level.graph.num_vertices(), g.num_vertices());
  EXPECT_GE(level.graph.num_vertices(), g.num_vertices() / 2);
}

TEST(Hem, PreservesTotalWeight) {
  auto g = grid_graph(10, 10);
  std::vector<Weight> wc(100), wr(100);
  for (int i = 0; i < 100; ++i) {
    wc[i] = i % 7 + 1;
    wr[i] = i % 3 + 1;
  }
  g.set_weights(wc, wr);
  Rng rng(2);
  const auto level = coarsen_hem(g, rng);
  EXPECT_EQ(level.graph.total_wcomp(), g.total_wcomp());
  EXPECT_EQ(level.graph.total_wremap(), g.total_wremap());
}

TEST(Hem, CmapIsOnto) {
  const auto g = grid_graph(8, 8);
  Rng rng(3);
  const auto level = coarsen_hem(g, rng);
  std::vector<char> hit(static_cast<std::size_t>(level.graph.num_vertices()), 0);
  for (Index c : level.cmap) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, level.graph.num_vertices());
    hit[static_cast<std::size_t>(c)] = 1;
  }
  for (char h : hit) EXPECT_TRUE(h);
}

TEST(InitPart, ProducesValidBalancedParts) {
  const auto g = grid_graph(16, 16);
  Rng rng(4);
  const auto part = initial_partition(g, 4, rng);
  EXPECT_TRUE(is_valid_partition(g, part, 4));
  EXPECT_LT(load_imbalance(g, part, 4), 1.35);
}

TEST(InitPart, SinglePart) {
  const auto g = grid_graph(4, 4);
  Rng rng(5);
  const auto part = initial_partition(g, 1, rng);
  for (Rank p : part) EXPECT_EQ(p, 0);
}

TEST(RefineKway, NeverWorsensCut) {
  const auto g = grid_graph(16, 16);
  Rng rng(6);
  auto part = initial_partition(g, 4, rng);
  RefineOptions opt;
  opt.allow_balancing_moves = false;
  const auto stats = refine_kway(g, part, 4, opt, rng);
  EXPECT_LE(stats.cut_after, stats.cut_before);
  EXPECT_TRUE(is_valid_partition(g, part, 4));
}

TEST(RefineKway, BalancesOverloadedPart) {
  const auto g = grid_graph(16, 16);
  // Everything on part 0 except one vertex per other part.
  PartVec part(static_cast<std::size_t>(g.num_vertices()), 0);
  part[0] = 1;
  part[1] = 2;
  part[2] = 3;
  Rng rng(7);
  RefineOptions opt;
  opt.max_passes = 64;
  refine_kway(g, part, 4, opt, rng);
  EXPECT_LT(load_imbalance(g, part, 4), 1.15);
}

// Regression for two refiner biases. (1) Truncating-average balance
// condition: with total = 100 over 3 parts, the floor average is 33 but a
// balanced part holds ceil(100/3) = 34. The only legal move (v1, weight 4,
// part 0 -> part 1) lands the receiver at exactly 34 with zero cut gain, so
// the old `to_after <= total / nparts` test rejected it and the 35-heavy
// part 0 could never shed load toward its only neighbor. (2) Cross-pass
// stamp staleness: the conn stamps hold vertex ids, so without a per-pass
// reset a revisited vertex saw accumulated connection weights and phantom
// cut gains — here that manifested as v1 oscillating 0 -> 1 -> 0 on
// fictitious gain for all max_passes. The cut_after == cut_before assert
// pins both: one real move, no phantom-gain churn.
TEST(RefineKway, DiffusesIntoPartAtCeilingAverage) {
  // Path graph 0-1-2-3 with unit edge weights: v1 is the sole boundary
  // vertex with a candidate move (part 2 holds one vertex and may not
  // empty; v0/v2 moves are not downhill).
  const std::vector<std::pair<Index, Index>> edges = {{0, 1}, {1, 2}, {2, 3}};
  auto g = graph::Csr::from_edges(4, edges);
  g.set_weights({31, 4, 30, 35}, {31, 4, 30, 35});
  PartVec part = {0, 0, 1, 2};  // loads 35 / 30 / 35
  Rng rng(8);
  RefineOptions opt;
  const auto stats = refine_kway(g, part, 3, opt, rng);
  EXPECT_EQ(part[1], 1) << "weight-4 vertex must diffuse into the part that "
                           "ends at the ceiling average";
  EXPECT_GE(stats.moves, 1);
  // Cut is unchanged (gain 0): the move is purely a balance move.
  EXPECT_EQ(stats.cut_after, stats.cut_before);
  EXPECT_TRUE(is_valid_partition(g, part, 3));
}

class MultilevelSweep
    : public ::testing::TestWithParam<std::tuple<int, Rank>> {};

TEST_P(MultilevelSweep, BalancedValidPartitions) {
  const auto [boxn, nparts] = GetParam();
  const auto g = box_dual(boxn);
  MultilevelOptions opt;
  opt.nparts = nparts;
  const auto res = partition(g, opt);
  EXPECT_TRUE(is_valid_partition(g, res.part, nparts));
  EXPECT_LT(res.imbalance, 1.0 + opt.imbalance_tol + 0.05);
  EXPECT_GT(res.cut, 0);
  EXPECT_GE(res.levels.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MultilevelSweep,
    ::testing::Combine(::testing::Values(3, 4, 5),
                       ::testing::Values<Rank>(2, 4, 8, 16)));

TEST(Multilevel, CutBeatsRandomPartition) {
  const auto g = box_dual(5);
  MultilevelOptions opt;
  opt.nparts = 8;
  const auto res = partition(g, opt);

  Rng rng(8);
  PartVec random_part(static_cast<std::size_t>(g.num_vertices()));
  for (auto& p : random_part) p = static_cast<Rank>(rng.below(8));
  EXPECT_LT(res.cut, edge_cut(g, random_part) / 3);
}

TEST(Multilevel, WeightedBalance) {
  auto g = box_dual(4);
  // Skewed weights: one corner heavy (simulating local refinement).
  std::vector<Weight> wc(static_cast<std::size_t>(g.num_vertices()), 1);
  for (Index v = 0; v < g.num_vertices() / 8; ++v) wc[v] = 8;
  g.set_weights(wc, wc);
  MultilevelOptions opt;
  opt.nparts = 4;
  const auto res = partition(g, opt);
  EXPECT_LT(res.imbalance, 1.12);
}

TEST(Multilevel, DeterministicForSeed) {
  const auto g = box_dual(3);
  MultilevelOptions opt;
  opt.nparts = 4;
  const auto a = partition(g, opt);
  const auto b = partition(g, opt);
  EXPECT_EQ(a.part, b.part);
}

TEST(Repartition, WarmStartKeepsMostVerticesHome) {
  auto g = box_dual(4);
  MultilevelOptions opt;
  opt.nparts = 8;
  const auto base = partition(g, opt);

  // Mildly perturb the weights (small adaption) and repartition.
  std::vector<Weight> wc(static_cast<std::size_t>(g.num_vertices()), 1);
  for (Index v = 0; v < g.num_vertices() / 10; ++v) wc[v] = 3;
  g.set_weights(wc, wc);
  const auto rep = repartition(g, base.part, opt);
  EXPECT_TRUE(rep.used_previous);
  EXPECT_LT(rep.imbalance, 1.0 + opt.imbalance_tol + 0.05);

  Index moved = 0;
  for (Index v = 0; v < g.num_vertices(); ++v) {
    moved += (rep.part[v] != base.part[v]);
  }
  // A warm start moves far fewer vertices than a scratch repartition would.
  EXPECT_LT(moved, g.num_vertices() / 4);
}

TEST(Repartition, FallsBackOnExtremeImbalance) {
  auto g = box_dual(4);
  MultilevelOptions opt;
  opt.nparts = 8;
  const auto base = partition(g, opt);

  // Blow up one part's weights so diffusion alone cannot restore balance.
  std::vector<Weight> wc(static_cast<std::size_t>(g.num_vertices()), 1);
  for (Index v = 0; v < g.num_vertices(); ++v) {
    if (base.part[v] == 0) wc[static_cast<std::size_t>(v)] = 200;
  }
  g.set_weights(wc, wc);
  const auto rep = repartition(g, base.part, opt);
  // One vertex weighs 200 vs a ~1300 part target: balance granularity alone
  // allows ~15% slack, so only assert we got within two vertex-weights.
  EXPECT_LT(rep.imbalance, 1.3);
  EXPECT_FALSE(rep.used_previous && rep.imbalance > 1.2);
}

TEST(Rcb, SplitsUnitSquareEvenly) {
  std::vector<mesh::Vec3> pts;
  for (int j = 0; j < 16; ++j) {
    for (int i = 0; i < 16; ++i) {
      pts.push_back({i + 0.5, j + 0.5, 0});
    }
  }
  const auto part = rcb_partition(pts, {}, 4);
  std::vector<int> count(4, 0);
  for (Rank p : part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 4);
    ++count[static_cast<std::size_t>(p)];
  }
  for (int c : count) EXPECT_EQ(c, 64);
}

TEST(Rcb, WeightedMedianRespectsWeights) {
  // Two heavy points + many light ones: heavy ones must split apart.
  std::vector<mesh::Vec3> pts = {{0, 0, 0}, {10, 0, 0}};
  std::vector<Weight> w = {100, 100};
  for (int i = 1; i < 10; ++i) {
    pts.push_back({static_cast<double>(i), 0, 0});
    w.push_back(1);
  }
  const auto part = rcb_partition(pts, w, 2);
  EXPECT_NE(part[0], part[1]);
}

TEST(Rcb, HandlesNpartsEqualsN) {
  std::vector<mesh::Vec3> pts = {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};
  const auto part = rcb_partition(pts, {}, 3);
  std::set<Rank> distinct(part.begin(), part.end());
  EXPECT_EQ(distinct.size(), 3u);
}

}  // namespace
}  // namespace plum::partition
