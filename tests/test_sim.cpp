// Tests for the SP2 machine cost model: §4.5 gain/cost arithmetic, phase
// time estimators and their qualitative shapes (partitioner U-curve,
// remap time monotone in volume).

#include <gtest/gtest.h>

#include <cmath>

#include "sim/machine.hpp"

namespace plum::sim {
namespace {

remap::RemapVolume volume(Weight total, int sets, Weight bottleneck,
                          int bsets) {
  remap::RemapVolume v;
  v.total_elems = total;
  v.total_sets = sets;
  v.bottleneck_elems = bottleneck;
  v.bottleneck_sets = bsets;
  return v;
}

TEST(CostModel, GainPositiveWhenBalanceImproves) {
  CostModel cm;
  EXPECT_GT(cm.computational_gain(2000, 1000, 500, 300), 0.0);
  EXPECT_LT(cm.computational_gain(1000, 2000, 300, 500), 0.0);
  EXPECT_DOUBLE_EQ(cm.computational_gain(1000, 1000, 300, 300), 0.0);
}

TEST(CostModel, GainIncludesRefinementTerm) {
  CostModel cm;
  // Same solver balance; only the subdivision phase becomes balanced.
  const double g = cm.computational_gain(1000, 1000, 800, 200);
  EXPECT_NEAR(g, cm.params().t_refine * 600.0, 1e-12);
}

TEST(CostModel, RedistributionCostFollowsPaperFormula) {
  CostModel cm;
  const auto vol = volume(1000, 12, 300, 5);
  const auto& p = cm.params();
  EXPECT_NEAR(cm.redistribution_cost(vol, CostMetric::kTotalV),
              p.words_per_element * 1000.0 * p.t_lat + 12 * p.t_setup, 1e-12);
  EXPECT_NEAR(cm.redistribution_cost(vol, CostMetric::kMaxV),
              p.words_per_element * 300.0 * p.t_lat + 5 * p.t_setup, 1e-12);
}

TEST(CostModel, AcceptGate) {
  CostModel cm;
  EXPECT_TRUE(cm.accept_remap(1.0, 0.5));
  EXPECT_FALSE(cm.accept_remap(0.5, 1.0));
  EXPECT_FALSE(cm.accept_remap(1.0, 1.0));
}

TEST(CostModel, AdaptionTimeGovernedByBottleneck) {
  CostModel cm;
  const double balanced = cm.adaption_seconds({100, 100, 100, 100},
                                              {50, 50, 50, 50}, 2);
  const double skewed =
      cm.adaption_seconds({400, 0, 0, 0}, {50, 50, 50, 50}, 2);
  EXPECT_LT(balanced, skewed);
}

TEST(CostModel, RemapTimeMonotoneInBottleneckVolume) {
  CostModel cm;
  EXPECT_LT(cm.remap_seconds(volume(1000, 10, 100, 4)),
            cm.remap_seconds(volume(1000, 10, 400, 4)));
}

TEST(CostModel, PartitionTimeHasInteriorMinimum) {
  CostModel cm;
  // Paper Fig. 6: minimum around P = 16 for the 61k-element dual graph.
  const Index n = 60968;
  const int levels = 14;
  const double t2 = cm.partition_seconds(n, levels, 2);
  const double t16 = cm.partition_seconds(n, levels, 16);
  const double t64 = cm.partition_seconds(n, levels, 64);
  EXPECT_LT(t16, t2);
  EXPECT_LT(t16, t64);
  // Calibration anchor: ~0.58 s at P = 64 (paper quote for Real_2).
  EXPECT_NEAR(t64, 0.58, 0.12);
}

TEST(CostModel, SolverSecondsScalesWithLoad) {
  CostModel cm;
  EXPECT_DOUBLE_EQ(cm.solver_seconds(2000), 2.0 * cm.solver_seconds(1000));
}

TEST(CostModel, RefinementTimeAnchor) {
  // ~0.55 s at P = 64 for Real_2's ~180k created children, balanced.
  CostModel cm;
  const Index per_rank = 180000 / 64;
  std::vector<Index> work(64, per_rank);
  std::vector<Index> elems(64, 61000 / 64);
  const double t = cm.adaption_seconds(work, elems, 3);
  EXPECT_GT(t, 0.3);
  EXPECT_LT(t, 0.9);
}

TEST(CostModel, AdaptionSecondsSingleRankSingleElement) {
  // nranks = 1 degenerates cleanly: the lone rank IS the bottleneck.
  CostModel cm;
  const auto& p = cm.params();
  EXPECT_NEAR(cm.adaption_seconds({7}, {3}, 2),
              p.t_refine * 7.0 + 2.0 * (p.t_mark * 3.0 + p.t_setup), 1e-12);
}

TEST(CostModel, AdaptionSecondsZeroMarkRoundsIsPureSubdivision) {
  // mark_rounds = 0 (a cycle that marked nothing) must not charge any
  // marking or synchronization time.
  CostModel cm;
  EXPECT_NEAR(cm.adaption_seconds({50, 80}, {100, 120}, 0),
              cm.params().t_refine * 80.0, 1e-12);
}

TEST(CostModel, PartitionSecondsSingleRankHasNoSyncBlowup) {
  // P = 1 pays the full local sweep but only one rank's worth of sync.
  CostModel cm;
  const auto& p = cm.params();
  EXPECT_NEAR(cm.partition_seconds(1000, 14, 1),
              p.t_part_vertex * 1000.0 + p.t_part_sync_per_rank, 1e-12);
  EXPECT_LT(cm.partition_seconds(1, 1, 1), 0.02);  // near-empty graph
}

TEST(CostModel, PredictedMoveBytesChargesPerSetFraming) {
  CostModel cm;
  const auto vol = volume(1000, 12, 300, 5);
  const auto& p = cm.params();
  EXPECT_EQ(cm.predicted_move_bytes(vol, CostMetric::kTotalV),
            std::llround(cm.move_bytes_per_element() * 1000.0 +
                         p.bytes_per_set * 12.0));
  EXPECT_EQ(cm.predicted_move_bytes(vol, CostMetric::kMaxV),
            std::llround(cm.move_bytes_per_element() * 300.0 +
                         p.bytes_per_set * 5.0));
  // Default payload is derived from the paper's words-per-element; an
  // explicit calibrated override wins.
  EXPECT_DOUBLE_EQ(cm.move_bytes_per_element(),
                   static_cast<double>(p.words_per_element) * 8.0);
  MachineParams mp;
  mp.bytes_per_element = 1234.5;
  EXPECT_DOUBLE_EQ(CostModel(mp).move_bytes_per_element(), 1234.5);
}

TEST(CostModel, AcceptGateHonorsCalibratedMargin) {
  MachineParams strict;
  strict.gate_margin = 2.0;
  const CostModel cm(strict);
  EXPECT_TRUE(cm.accept_remap(2.1, 1.0));
  EXPECT_FALSE(cm.accept_remap(1.9, 1.0));  // would pass at margin 1.0
}

}  // namespace
}  // namespace plum::sim
