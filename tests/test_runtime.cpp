// Unit tests for the BSP runtime: message routing, determinism, ledger
// accounting, collectives.

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <numeric>
#include <span>

#include <sys/wait.h>

#include "runtime/collectives.hpp"
#include "runtime/engine.hpp"
#include "runtime/frame.hpp"
#include "runtime/proc_group.hpp"
#include "runtime/transport.hpp"

namespace plum::rt {
namespace {

TEST(Message, PackUnpackRoundTrip) {
  std::vector<std::int32_t> v = {1, -2, 3};
  const auto bytes = pack(v);
  EXPECT_EQ(bytes.size(), 12u);
  const auto back = unpack<std::int32_t>(bytes);
  EXPECT_EQ(back, v);
}

TEST(Message, EmptyPayload) {
  std::vector<double> v;
  const auto back = unpack<double>(pack(v));
  EXPECT_TRUE(back.empty());
}

TEST(Engine, RingPassDeliversNextStep) {
  const Rank p = 4;
  Engine eng(p);
  std::vector<int> received(p, -1);
  int phase = 0;
  eng.run([&](Rank r, const Inbox& in, Outbox& out) {
    if (r == 0) ++phase;
    if (phase == 1) {
      out.send_vec<int>((r + 1) % p, 0, {static_cast<int>(r)});
      return true;
    }
    for (const auto& m : in.messages()) {
      received[r] = unpack<int>(m)[0];
    }
    return false;
  });
  for (Rank r = 0; r < p; ++r) EXPECT_EQ(received[r], (r + p - 1) % p);
}

TEST(Engine, MessagesNotVisibleSameStep) {
  Engine eng(2);
  bool saw_in_step0 = false;
  int step = 0;
  eng.run([&](Rank r, const Inbox& in, Outbox& out) {
    if (r == 0 && step == 0) {
      out.send_vec<int>(1, 0, {99});
    }
    if (r == 1 && step == 0) saw_in_step0 = !in.messages().empty();
    if (r == 1) ++step;
    return step < 2;
  });
  EXPECT_FALSE(saw_in_step0);
}

TEST(Engine, LedgerCountsBytesAndMessages) {
  Engine eng(2);
  int phase = 0;
  eng.run([&](Rank r, const Inbox&, Outbox& out) {
    if (r == 0 && phase == 0) {
      out.send_vec<std::int64_t>(1, 0, {1, 2, 3});
      out.charge(10);
    }
    if (r == 1) ++phase;
    return phase < 2;
  });
  EXPECT_EQ(eng.ledger().total_bytes(), 24);
  EXPECT_EQ(eng.ledger().max_rank_compute(), 10);
}

TEST(Engine, TagFiltering) {
  Engine eng(2);
  std::vector<int> got;
  int phase = 0;
  eng.run([&](Rank r, const Inbox& in, Outbox& out) {
    if (r == 0) ++phase;
    if (phase == 1) {
      if (r == 0) {
        out.send_vec<int>(1, 7, {70});
        out.send_vec<int>(1, 8, {80});
      }
      return true;
    }
    if (r == 1) {
      for (const auto* m : in.with_tag(8)) got.push_back(unpack<int>(*m)[0]);
    }
    return false;
  });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 80);
}

TEST(Collectives, AllToAll) {
  const Rank p = 3;
  Engine eng(p);
  std::vector<std::vector<std::vector<int>>> input(p);
  for (Rank r = 0; r < p; ++r) {
    input[r].resize(p);
    for (Rank to = 0; to < p; ++to) input[r][to] = {r * 10 + to};
  }
  const auto recv = all_to_all(eng, input);
  for (Rank r = 0; r < p; ++r) {
    for (Rank from = 0; from < p; ++from) {
      ASSERT_EQ(recv[r][from].size(), 1u);
      EXPECT_EQ(recv[r][from][0], from * 10 + r);
    }
  }
}

TEST(Collectives, GatherToRoot) {
  const Rank p = 4;
  Engine eng(p);
  std::vector<std::vector<int>> input(p);
  for (Rank r = 0; r < p; ++r) input[r] = {static_cast<int>(r * r)};
  const auto rows = gather(eng, input, 0);
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(p));
  for (Rank r = 0; r < p; ++r) EXPECT_EQ(rows[r][0], r * r);
}

TEST(Collectives, ScatterFromRoot) {
  const Rank p = 3;
  Engine eng(p);
  std::vector<std::vector<int>> input = {{0}, {11}, {22}};
  const auto got = scatter(eng, input, 0);
  for (Rank r = 0; r < p; ++r) EXPECT_EQ(got[r][0], r * 11);
}

TEST(Collectives, Allgather) {
  const Rank p = 3;
  Engine eng(p);
  std::vector<std::vector<int>> input = {{1}, {2}, {3}};
  const auto all = allgather(eng, input);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0][0] + all[1][0] + all[2][0], 6);
}

TEST(Collectives, AllreduceMax) {
  const Rank p = 5;
  Engine eng(p);
  std::vector<std::int64_t> vals = {3, 1, 4, 1, 5};
  const auto m = allreduce(
      eng, vals, [](std::int64_t a, std::int64_t b) { return std::max(a, b); },
      std::int64_t{0});
  EXPECT_EQ(m, 5);
}

TEST(Inbox, WithTagFiltersAndKeepsDeliveryOrder) {
  // Direct construction: with_tag must return exactly the matching
  // messages, preserving delivery (sender-rank) order, without copying.
  std::vector<Message> msgs;
  for (int i = 0; i < 4; ++i) {
    const std::vector<int> payload = {i + 1};
    msgs.push_back(Message{i, i == 1 ? 5 : 7, pack(payload)});
  }
  Inbox inbox(std::move(msgs));

  const auto tagged = inbox.with_tag(7);
  ASSERT_EQ(tagged.size(), 3u);
  EXPECT_EQ(tagged[0]->from, 0);
  EXPECT_EQ(tagged[1]->from, 2);
  EXPECT_EQ(tagged[2]->from, 3);
  EXPECT_EQ(unpack<int>(*tagged[1])[0], 3);
  EXPECT_TRUE(inbox.with_tag(99).empty());
  // Pointers alias the inbox's own storage.
  EXPECT_EQ(tagged[0], &inbox.messages()[0]);
}

TEST(Inbox, WithTagSenderRankOrderThroughEngine) {
  // All ranks message rank 0 with interleaved tags; delivery and therefore
  // with_tag order is sender-rank order regardless of tag interleaving.
  const Rank p = 5;
  Engine eng(p);
  std::vector<Rank> senders;
  eng.run([&](Rank r, const Inbox& in, Outbox& out) {
    if (out.step() == 0) {
      out.send_vec<int>(0, r % 2, {static_cast<int>(r)});
      out.send_vec<int>(0, 3, {static_cast<int>(100 + r)});
      return true;
    }
    if (r == 0) {
      for (const auto* m : in.with_tag(3)) senders.push_back(m->from);
    }
    return false;
  });
  ASSERT_EQ(senders.size(), static_cast<std::size_t>(p));
  for (Rank r = 0; r < p; ++r) EXPECT_EQ(senders[static_cast<std::size_t>(r)], r);
}

TEST(Outbox, SendAccountsMessagesAndBytesPerRankPerStep) {
  const Rank p = 3;
  Engine eng(p);
  eng.run([&](Rank r, const Inbox&, Outbox& out) {
    if (out.step() == 0) {
      if (r == 1) {
        out.send(0, 0, std::vector<std::byte>(10));
        out.send(2, 0, std::vector<std::byte>(32));
        out.charge(5);
      }
      return true;
    }
    if (out.step() == 1 && r == 2) {
      out.send_vec<double>(0, 1, {1.0, 2.0, 3.0});
    }
    return false;
  });

  const auto& steps = eng.ledger().steps;
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0][1].msgs_sent, 2);
  EXPECT_EQ(steps[0][1].bytes_sent, 42);
  EXPECT_EQ(steps[0][1].compute_units, 5);
  EXPECT_EQ(steps[0][0].msgs_sent, 0);
  EXPECT_EQ(steps[0][2].bytes_sent, 0);
  EXPECT_EQ(steps[1][2].msgs_sent, 1);
  EXPECT_EQ(steps[1][2].bytes_sent, 24);  // 3 doubles
  EXPECT_EQ(eng.ledger().total_bytes(), 66);
}

TEST(Outbox, StepIndexRestartsPerRun) {
  Engine eng(2);
  std::vector<int> seen;
  auto fn = [&](Rank r, const Inbox&, Outbox& out) {
    if (r == 0) seen.push_back(out.step());
    return out.step() < 1;
  };
  eng.run(fn);
  eng.run(fn);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 0, 1}));
}

TEST(Engine, LedgerTracksSupersteps) {
  Engine eng(2);
  int steps = 0;
  eng.run([&](Rank r, const Inbox&, Outbox&) {
    if (r == 0) ++steps;
    return steps < 3;
  });
  EXPECT_EQ(eng.ledger().num_supersteps(), 3);
  eng.reset_ledger();
  EXPECT_EQ(eng.ledger().num_supersteps(), 0);
}

TEST(CommCell, SendsAttributedPerReceiverTagAndStep) {
  const Rank p = 3;
  Engine eng(p);
  eng.run([&](Rank r, const Inbox&, Outbox& out) {
    if (out.step() == 0) {
      if (r == 1) {
        out.send(0, 7, std::vector<std::byte>(10));
        out.send(0, 7, std::vector<std::byte>(6));   // same cell
        out.send(0, 9, std::vector<std::byte>(4));   // same peer, new tag
        out.send(2, 7, std::vector<std::byte>(32));  // new peer
      }
      return true;
    }
    return false;
  });

  const auto& row = eng.ledger().steps[0][1].sends;
  ASSERT_EQ(row.size(), 3u);  // (0,7), (0,9), (2,7) in first-send order
  EXPECT_EQ(row[0].to, 0);
  EXPECT_EQ(row[0].tag, 7);
  EXPECT_EQ(row[0].msgs, 2);
  EXPECT_EQ(row[0].bytes, 16);
  EXPECT_EQ(row[1].to, 0);
  EXPECT_EQ(row[1].tag, 9);
  EXPECT_EQ(row[1].bytes, 4);
  EXPECT_EQ(row[2].to, 2);
  EXPECT_EQ(row[2].bytes, 32);
  // Cell totals reconcile with the flat counters.
  EXPECT_EQ(eng.ledger().steps[0][1].msgs_sent, 4);
  EXPECT_EQ(eng.ledger().steps[0][1].bytes_sent, 52);
  // Ranks that sent nothing have empty rows.
  EXPECT_TRUE(eng.ledger().steps[0][0].sends.empty());
  EXPECT_TRUE(eng.ledger().steps[1][1].sends.empty());
}

TEST(CommMatrix, RowAndColumnSumsMatchLedgerTotals) {
  const Rank p = 4;
  Engine eng(p);
  // Every rank sends (r+1) bytes to each other rank for two supersteps.
  eng.run([&](Rank r, const Inbox&, Outbox& out) {
    for (Rank q = 0; q < p; ++q) {
      if (q == r) continue;
      out.send(q, 3, std::vector<std::byte>(static_cast<std::size_t>(r + 1)));
    }
    return out.step() < 1;
  });

  const CommMatrix cm = eng.ledger().comm_matrix();
  ASSERT_EQ(cm.nranks, p);
  EXPECT_EQ(cm.bytes_at(0, 0), 0);  // no self-sends in this program
  EXPECT_EQ(cm.bytes_at(2, 1), 2 * 3);  // 3 bytes per step, 2 steps
  EXPECT_EQ(cm.msgs_at(2, 1), 2);
  std::int64_t row_total = 0;
  std::int64_t col_total = 0;
  for (Rank r = 0; r < p; ++r) {
    EXPECT_EQ(cm.row_bytes(r), 2 * (p - 1) * (r + 1));
    row_total += cm.row_bytes(r);
    col_total += cm.col_bytes(r);
  }
  EXPECT_EQ(row_total, cm.total_bytes());
  EXPECT_EQ(col_total, cm.total_bytes());
  EXPECT_EQ(cm.total_bytes(), eng.ledger().total_bytes());
  EXPECT_EQ(cm.total_msgs(), 2 * p * (p - 1));
}

TEST(CommMatrix, IdenticalAcrossEngines) {
  auto program = [](Rank r, const Inbox& in, Outbox& out) {
    if (out.step() == 0) {
      out.send_vec<int>((r + 1) % out.nranks(), 5, {static_cast<int>(r), 2});
      return true;
    }
    for (const auto& m : in.messages()) {
      out.send(m.from, 6, m.bytes);  // echo back
    }
    return out.step() < 2;
  };
  Engine seq(4);
  seq.run(program);
  ParallelEngine par(4, 2);
  par.run(program);
  EXPECT_EQ(seq.ledger(), par.ledger());  // includes the per-cell rows
  EXPECT_EQ(seq.ledger().comm_matrix(), par.ledger().comm_matrix());
  EXPECT_GT(seq.ledger().comm_matrix().total_bytes(), 0);
}

// Regression for the send/receive conservation assert: a mixed-tag,
// mixed-size program must pass it on both engines (the assert fires inside
// superstep(), so simply completing the run exercises it every step).
TEST(Engine, SendReceiveConservationHoldsAcrossEngines) {
  auto program = [](Rank r, const Inbox&, Outbox& out) {
    if (out.step() > 3) return false;
    for (Rank q = 0; q < out.nranks(); ++q) {
      out.send(q, r % 3,
               std::vector<std::byte>(static_cast<std::size_t>(r + q + 1)));
    }
    return true;
  };
  Engine seq(5);
  seq.run(program);
  ParallelEngine par(5, 3);
  par.run(program);
  EXPECT_EQ(seq.ledger(), par.ledger());
}

TEST(Engine, RunAbortsOnLivelock) {
  Engine eng(1);
  EXPECT_DEATH(
      eng.run([](Rank, const Inbox&, Outbox&) { return true; }, 100),
      "did not terminate");
}

// --- wire framing -------------------------------------------------------------

std::vector<Frame> sample_frames() {
  std::vector<Frame> fs;
  fs.push_back({0, 1, 7, {std::byte{0xde}, std::byte{0xad}}});
  fs.push_back({3, 0, 0, {}});  // empty payload
  Frame big;
  big.from = 2;
  big.to = 3;
  big.tag = 42;
  big.payload.resize(100000);
  for (std::size_t i = 0; i < big.payload.size(); ++i) {
    big.payload[i] = static_cast<std::byte>(i * 31 + 7);
  }
  fs.push_back(std::move(big));
  return fs;
}

TEST(Frame, EncodeDecodeRoundTrip) {
  std::vector<std::byte> wire;
  const auto want = sample_frames();
  for (const auto& f : want) encode_frame(f, &wire);
  encode_control(CtrlOp::kDone, 5, &wire);

  FrameDecoder dec;
  dec.feed(wire);
  Frame f;
  for (const auto& w : want) {
    ASSERT_TRUE(dec.next(&f));
    EXPECT_FALSE(f.is_control());
    EXPECT_EQ(f, w);
  }
  ASSERT_TRUE(dec.next(&f));
  EXPECT_TRUE(f.is_control());
  EXPECT_EQ(static_cast<CtrlOp>(f.tag), CtrlOp::kDone);
  EXPECT_EQ(f.to, 5);
  EXPECT_FALSE(dec.next(&f));
  EXPECT_FALSE(dec.mid_frame());
}

TEST(Frame, DecoderHandlesSplitAndCoalescedReads) {
  std::vector<std::byte> wire;
  const auto want = sample_frames();
  // Three copies of the batch so frames also straddle batch boundaries.
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto& f : want) encode_frame(f, &wire);
  }

  // Deterministic "fuzz": every chunking from 1-byte trickles through
  // chunks far larger than a frame must yield the identical frame list.
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{19},
        std::size_t{kFrameHeaderBytes}, std::size_t{4096}, wire.size()}) {
    FrameDecoder dec;
    std::vector<Frame> got;
    Frame f;
    for (std::size_t at = 0; at < wire.size(); at += chunk) {
      const std::size_t n = std::min(chunk, wire.size() - at);
      dec.feed(std::span<const std::byte>(wire.data() + at, n));
      while (dec.next(&f)) got.push_back(std::move(f));
    }
    ASSERT_EQ(got.size(), 3 * want.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], want[i % want.size()]) << "chunk=" << chunk;
    }
    EXPECT_FALSE(dec.mid_frame()) << "chunk=" << chunk;
  }
}

TEST(Frame, MidFrameReportsIncompleteTail) {
  std::vector<std::byte> wire;
  encode_frame({0, 1, 2, {std::byte{1}, std::byte{2}, std::byte{3}}}, &wire);
  FrameDecoder dec;
  // Header only: no frame yet, but the decoder knows bytes are pending —
  // this is how the transport detects a peer that died mid-frame.
  dec.feed(std::span<const std::byte>(wire.data(), kFrameHeaderBytes));
  Frame f;
  EXPECT_FALSE(dec.next(&f));
  EXPECT_TRUE(dec.mid_frame());
  dec.feed(std::span<const std::byte>(wire.data() + kFrameHeaderBytes,
                                      wire.size() - kFrameHeaderBytes));
  EXPECT_TRUE(dec.next(&f));
  EXPECT_FALSE(dec.mid_frame());
}

// --- transport ----------------------------------------------------------------

TEST(SendQueue, BucketsInFirstSendOrderProgramOrderWithin) {
  SendQueue q;
  EXPECT_TRUE(q.empty());
  q.push(3, Message{0, 1, {}});
  q.push(1, Message{0, 2, {}});
  q.push(3, Message{0, 3, {}});
  ASSERT_EQ(q.num_buckets(), 2u);  // sparse: two destinations, two buckets
  EXPECT_EQ(q.buckets()[0].to, 3);  // first-send order, not rank order
  EXPECT_EQ(q.buckets()[1].to, 1);
  ASSERT_EQ(q.buckets()[0].msgs.size(), 2u);
  EXPECT_EQ(q.buckets()[0].msgs[0].tag, 1);
  EXPECT_EQ(q.buckets()[0].msgs[1].tag, 3);
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(Transport, ParseAndNameRoundTrip) {
  TransportKind k = TransportKind::kPipe;
  EXPECT_TRUE(parse_transport_kind("inproc", &k));
  EXPECT_EQ(k, TransportKind::kInProc);
  EXPECT_TRUE(parse_transport_kind("pipe", &k));
  EXPECT_EQ(k, TransportKind::kPipe);
  EXPECT_FALSE(parse_transport_kind("tcp", &k));
  EXPECT_EQ(k, TransportKind::kPipe);  // untouched on failure
  EXPECT_STREQ(transport_kind_name(TransportKind::kInProc), "inproc");
  EXPECT_STREQ(transport_kind_name(TransportKind::kPipe), "pipe");
}

/// Runs a degree-2 ring exchange (each rank talks to its two neighbors)
/// for several supersteps and returns the engine's transport for auditing.
void run_ring_exchange(Engine& eng, int steps) {
  const Rank p = eng.nranks();
  eng.run([&](Rank r, const Inbox& in, Outbox& out) {
    for (const auto& m : in.messages()) {
      (void)unpack<std::int32_t>(m);
    }
    if (out.step() >= steps) return false;
    out.send_vec<std::int32_t>((r + 1) % p, 0, {static_cast<std::int32_t>(r)});
    out.send_vec<std::int32_t>((r + p - 1) % p, 1,
                               {static_cast<std::int32_t>(r)});
    return true;
  });
}

// The replicated-state audit: for a P=64 ring, the resident transport
// queue state must be O(P * neighbors), never O(P^2). The old engine
// allocated a dense P*P vector-of-vectors per superstep (4096 cells here);
// sparse SendQueue buckets keep it at exactly P * degree = 128.
TEST(Transport, ResidentQueueStateIsNeighborsNotRanksSquared) {
  const Rank p = 64;
  const std::size_t degree = 2;
  for (const TransportKind kind : {TransportKind::kInProc,
                                   TransportKind::kPipe}) {
    auto eng = make_engine(p, 1, kind);
    run_ring_exchange(*eng, 5);
    const std::size_t cells = eng->transport().peak_queue_cells();
    EXPECT_EQ(cells, static_cast<std::size_t>(p) * degree)
        << transport_kind_name(kind);
    EXPECT_LT(cells, static_cast<std::size_t>(p) * static_cast<std::size_t>(p) / 8)
        << transport_kind_name(kind);
    // Comm accounting mirrors the queues: the ledger's CommMatrix keeps one
    // sparse cell per (sender, neighbor) pair — P * degree resident cells,
    // never a dense P*P grid.
    const CommMatrix cm = eng->ledger().comm_matrix();
    EXPECT_EQ(cm.resident_cells(),
              static_cast<std::int64_t>(p) * static_cast<std::int64_t>(degree))
        << transport_kind_name(kind);
    const auto dense_bytes = static_cast<std::int64_t>(p) *
                             static_cast<std::int64_t>(p) *
                             static_cast<std::int64_t>(sizeof(CommMatrixCell));
    EXPECT_LT(cm.resident_bytes(), dense_bytes / 4) << transport_kind_name(kind);
  }
  // And the pipe coordinator's own buffers: O(groups) staging vectors whose
  // bytes scale with traffic per barrier, not with P^2 bookkeeping.
  auto eng = make_engine(p, 1, TransportKind::kPipe);
  run_ring_exchange(*eng, 5);
  // 128 messages/step * (20-byte header + 4-byte payload) plus slack.
  EXPECT_LT(eng->transport().peak_resident_bytes(), std::size_t{64} * 1024);
}

TEST(ProcGroup, ChildrenEchoAndAreReaped) {
  const int n = 3;
  ProcGroup pg(n, [](int group, int fd) {
    // Echo child: read whatever arrives, write it straight back, tagged
    // with the group id in the first byte.
    std::byte buf[64];
    for (;;) {
      const std::ptrdiff_t got = read_some(fd, buf, sizeof buf);
      if (got <= 0) return;
      buf[0] = static_cast<std::byte>(group);
      if (!write_all(fd, buf, static_cast<std::size_t>(got))) return;
    }
  });
  ASSERT_EQ(pg.size(), n);
  for (int g = 0; g < n; ++g) {
    ASSERT_TRUE(pg.alive(g));
    const std::byte out[3] = {std::byte{0xff},
                              static_cast<std::byte>(g == 1 ? 1 : 2),
                              std::byte{9}};
    ASSERT_TRUE(write_all(pg.fd(g), out, sizeof out));
    std::byte in[3] = {};
    std::size_t have = 0;
    while (have < sizeof in) {
      const std::ptrdiff_t got =
          read_some(pg.fd(g), in + have, sizeof in - have);
      ASSERT_GT(got, 0);
      have += static_cast<std::size_t>(got);
    }
    EXPECT_EQ(static_cast<int>(in[0]), g);
    EXPECT_EQ(in[1], out[1]);
    EXPECT_EQ(in[2], out[2]);
  }
  // Destructor closes the sockets (EOF to the children) and reaps them.
}

TEST(ProcGroup, AliveSeesChildExit) {
  ProcGroup pg(1, [](int, int) { /* exit immediately */ });
  // The child runs _exit(0) as soon as child_main returns; alive() reaps
  // it via waitpid. Poll without sleeping: the child does no work.
  bool gone = false;
  for (int i = 0; i < 100000 && !gone; ++i) gone = !pg.alive(0);
  EXPECT_TRUE(gone);
}

TEST(PipeTransport, GroupsPartitionRanksContiguously) {
  PipeTransportOptions opt;
  opt.nprocs = 3;
  PipeTransport t(8, opt);
  EXPECT_EQ(t.nprocs(), 3);
  int last = 0;
  for (Rank r = 0; r < 8; ++r) {
    const int g = t.group_of(r);
    EXPECT_GE(g, last);  // contiguous, monotone
    EXPECT_LT(g, 3);
    last = g;
  }
  EXPECT_EQ(t.group_of(0), 0);
  EXPECT_EQ(t.group_of(7), 2);

  // More groups than ranks clamps to one child per rank.
  PipeTransportOptions wide;
  wide.nprocs = 64;
  PipeTransport t2(4, wide);
  EXPECT_EQ(t2.nprocs(), 4);
}

TEST(ProcGroup, ChildStderrIsCapturedNotInherited) {
  ProcGroup pg(2, [](int group, int) {
    std::fprintf(stderr, "child %d says hello\n", group);
  });
  // drain_stderr never blocks; poll until the pipe delivers the write.
  std::string seen;
  for (int i = 0; i < 100000; ++i) {
    seen = pg.drain_stderr(1);
    if (seen.find("hello") != std::string::npos) break;
  }
  EXPECT_NE(seen.find("child 1 says hello"), std::string::npos) << seen;
  // Accumulates across calls and survives the child's exit.
  EXPECT_EQ(pg.drain_stderr(1), seen);
}

TEST(PipeTransport, DepotTelemetryCountsFramesAndSyscalls) {
  PipeTransportOptions opt;
  opt.nprocs = 2;
  auto transport = std::make_unique<PipeTransport>(4, opt);
  PipeTransport* pipe = transport.get();

  // Before any exchange the depots have reported nothing yet.
  for (const DepotStats& s : pipe->depot_stats()) {
    EXPECT_EQ(s.frames_in, 0);
    EXPECT_EQ(s.frames_out, 0);
  }

  Engine eng(4, std::move(transport));
  run_ring_exchange(eng, 4);

  // Each depot child's startup banner landed in the parent-side capture.
  auto& pipe_ref = *pipe;
  for (int g = 0; g < pipe_ref.nprocs(); ++g) {
    std::string banner;
    for (int i = 0; i < 100000; ++i) {
      banner = pipe_ref.procs().drain_stderr(g);
      if (banner.find("started") != std::string::npos) break;
    }
    EXPECT_NE(banner.find("plum-depot group=" + std::to_string(g)),
              std::string::npos)
        << banner;
  }

  const auto stats = pipe_ref.depot_stats();
  ASSERT_EQ(stats.size(), 2u);
  for (std::size_t g = 0; g < stats.size(); ++g) {
    const DepotStats& s = stats[g];
    // A ring pass routes every rank's sends through its group's depot.
    EXPECT_GT(s.frames_in, 0) << "group " << g;
    EXPECT_GT(s.frames_out, 0) << "group " << g;
    EXPECT_GT(s.read_calls, 0) << "group " << g;
    EXPECT_GT(s.write_calls, 0) << "group " << g;
    EXPECT_GT(s.peak_buffer_bytes, 0) << "group " << g;
    EXPECT_GE(s.stall_ns, 0) << "group " << g;
    // At a barrier every queued frame has been flushed back out.
    EXPECT_EQ(s.buffered_bytes, 0) << "group " << g;
  }
}

TEST(Frame, TelemetryRoundTrip) {
  DepotStats s;
  s.buffered_bytes = 12;
  s.frames_in = 34;
  s.frames_out = 56;
  s.read_calls = 7;
  s.write_calls = 8;
  s.peak_buffer_bytes = 9001;
  s.stall_ns = 123456789;
  std::vector<std::byte> wire;
  encode_telemetry(s, &wire);

  FrameDecoder dec;
  dec.feed(wire);
  Frame f;
  ASSERT_TRUE(dec.next(&f));
  ASSERT_TRUE(f.is_control());
  EXPECT_EQ(f.tag, static_cast<int>(CtrlOp::kTelemetry));
  DepotStats back;
  ASSERT_TRUE(decode_telemetry(f, &back));
  EXPECT_EQ(back, s);
  EXPECT_FALSE(dec.next(&f));  // exactly one frame on the wire
}

TEST(PipeTransportDeathTest, AbortsWhenRankGroupChildDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        PipeTransportOptions opt;
        opt.nprocs = 2;
        auto transport = std::make_unique<PipeTransport>(4, opt);
        PipeTransport* pipe = transport.get();
        Engine eng(4, std::move(transport));
        ::kill(pipe->procs().pid(0), SIGKILL);
        // Give the kernel a moment to deliver the EOF/EPIPE.
        int status = 0;
        ::waitpid(pipe->procs().pid(0), &status, 0);
        eng.run([&](Rank r, const Inbox&, Outbox& out) {
          if (out.step() == 0) {
            out.send_vec<std::int32_t>(0, 0, {static_cast<std::int32_t>(r)});
            return true;
          }
          return false;
        });
      },
      "rank group child died");
}

}  // namespace
}  // namespace plum::rt
