// plum-lint's own tests: every check is demonstrated by a known-bad
// fixture in tests/lint_fixtures/ (including the historical
// `if (r == 0) ++phase` idiom verbatim), known-clean code produces zero
// diagnostics, and the suppression mechanism works and stays honest.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "linter.hpp"

namespace {

using plumlint::LintResult;

std::string fixture_path(const std::string& name) {
  return std::string(PLUM_LINT_FIXTURE_DIR) + "/" + name;
}

LintResult lint_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name));
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return plumlint::lint_source(name, ss.str());
}

TEST(LintFixtures, RankGuardMutationHistoricalIdiom) {
  const LintResult r = lint_fixture("bad_rank_guard.cpp");
  EXPECT_EQ(r.count_of("rank-guard-mutation"), 2);
  EXPECT_EQ(r.unsuppressed_count(), 2) << plumlint::to_json(r);
}

TEST(LintFixtures, UnorderedIteration) {
  const LintResult r = lint_fixture("bad_unordered_iter.cpp");
  // Two unordered declarations + one range-for over one of them.
  EXPECT_EQ(r.count_of("unordered-iteration"), 3);
  EXPECT_EQ(r.unsuppressed_count(), 3) << plumlint::to_json(r);
}

TEST(LintFixtures, SharedAccumulator) {
  const LintResult r = lint_fixture("bad_shared_accumulator.cpp");
  EXPECT_EQ(r.count_of("shared-accumulator"), 3);
  // The rank-indexed writes in the same lambda must not be flagged.
  EXPECT_EQ(r.unsuppressed_count(), 3) << plumlint::to_json(r);
}

TEST(LintFixtures, MetricRecordingInsideSuperstep) {
  const LintResult r = lint_fixture("bad_metrics_in_superstep.cpp");
  // add_sample / add_sample_int / set_int on the captured registry; the
  // rank-indexed slot and the post-run recording must not be flagged.
  EXPECT_EQ(r.count_of("shared-accumulator"), 3);
  EXPECT_EQ(r.unsuppressed_count(), 3) << plumlint::to_json(r);
}

TEST(LintFixtures, ScopeRecordingInsideSuperstep) {
  const LintResult r = lint_fixture("bad_scope_in_superstep.cpp");
  // record_event on the captured FlightRecorder; the rank-indexed
  // ScopeRecorder handle and the post-run host call must not be flagged.
  EXPECT_EQ(r.count_of("shared-accumulator"), 3);
  EXPECT_EQ(r.unsuppressed_count(), 3) << plumlint::to_json(r);
}

TEST(LintFixtures, NondeterminismSources) {
  const LintResult r = lint_fixture("bad_nondeterminism.cpp");
  EXPECT_EQ(r.count_of("nondeterminism-source"), 4);
  EXPECT_EQ(r.unsuppressed_count(), 4) << plumlint::to_json(r);
}

TEST(LintFixtures, WallClockInSuperstep) {
  const LintResult r = lint_fixture("bad_wallclock_in_superstep.cpp");
  // A Timer declaration + a steady_clock::now() call inside the lambda;
  // the host-side Timer in the second function must not be flagged.
  EXPECT_EQ(r.count_of("wall-clock-in-superstep"), 2);
  EXPECT_EQ(r.unsuppressed_count(), 2) << plumlint::to_json(r);
}

TEST(LintFixtures, RawFdInSuperstep) {
  const LintResult r = lint_fixture("bad_raw_fd_in_superstep.cpp");
  // A bare read(), a global-scope ::write(), and a bare socket send()
  // inside the lambda; the outbox.send member call and the host-side fd
  // use after the run must not be flagged.
  EXPECT_EQ(r.count_of("raw-fd-in-superstep"), 3);
  EXPECT_EQ(r.unsuppressed_count(), 3) << plumlint::to_json(r);
}

TEST(LintFixtures, RawStringsDoNotDesyncTheLexer) {
  const LintResult r = lint_fixture("raw_strings.cpp");
  // One violation per function, each sitting after raw strings whose
  // prefixed forms (u8R/LR/uR/UR) used to swallow the rest of the file.
  EXPECT_EQ(r.count_of("shared-accumulator"), 3) << plumlint::to_json(r);
  EXPECT_EQ(r.count_of("rank-guard-mutation"), 1) << plumlint::to_json(r);
  EXPECT_EQ(r.unsuppressed_count(), 4) << plumlint::to_json(r);
}

TEST(LintFixtures, NestedLambdaScopesAreTracked) {
  const LintResult r = lint_fixture("nested_lambdas.cpp");
  // Helper params / init-captures / by-value copies are closure-local;
  // the nested superstep body is judged once, with its own rank var.
  EXPECT_EQ(r.count_of("shared-accumulator"), 3) << plumlint::to_json(r);
  EXPECT_EQ(r.unsuppressed_count(), 3) << plumlint::to_json(r);
}

TEST(LintFixtures, CleanSuperstepHasNoDiagnostics) {
  const LintResult r = lint_fixture("clean_superstep.cpp");
  EXPECT_EQ(r.unsuppressed_count(), 0) << plumlint::to_json(r);
  EXPECT_TRUE(r.diagnostics.empty()) << plumlint::to_json(r);
}

TEST(LintFixtures, JustifiedSuppressionsSilenceDiagnostics) {
  const LintResult r = lint_fixture("suppressed.cpp");
  EXPECT_EQ(r.unsuppressed_count(), 0) << plumlint::to_json(r);
  EXPECT_EQ(r.suppressed_count(), 3);
  for (const auto& d : r.diagnostics) {
    EXPECT_TRUE(d.suppressed);
    EXPECT_FALSE(d.justification.empty()) << d.check;
  }
}

TEST(LintFixtures, SuppressionHygiene) {
  const LintResult r = lint_fixture("bad_suppression.cpp");
  EXPECT_EQ(r.count_of("bad-suppression"), 2) << plumlint::to_json(r);
  EXPECT_EQ(r.count_of("unused-suppression"), 1);
  // The unjustified allow() does not suppress the rand() finding.
  EXPECT_EQ(r.count_of("nondeterminism-source"), 1);
}

TEST(LintFixtures, WholeDirectoryLintsWithSameTotals) {
  // Linting the fixtures together must not change per-check totals: names
  // declared unordered in one file only taint *member accesses* elsewhere,
  // so clean_superstep's ordered `shared` map stays clean even though
  // bad_unordered_iter declares an unordered member of the same name.
  std::vector<plumlint::FileInput> files;
  for (const char* name :
       {"bad_rank_guard.cpp", "bad_unordered_iter.cpp",
        "bad_shared_accumulator.cpp", "bad_metrics_in_superstep.cpp",
        "bad_scope_in_superstep.cpp", "bad_nondeterminism.cpp",
        "bad_wallclock_in_superstep.cpp",
        "bad_raw_fd_in_superstep.cpp", "clean_superstep.cpp",
        "suppressed.cpp", "bad_suppression.cpp", "raw_strings.cpp",
        "nested_lambdas.cpp"}) {
    std::ifstream in(fixture_path(name));
    ASSERT_TRUE(in.is_open()) << name;
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back({name, ss.str()});
  }
  const LintResult r = plumlint::lint_files(files);
  EXPECT_EQ(r.count_of("rank-guard-mutation"), 3);  // 2 + raw_strings
  EXPECT_EQ(r.count_of("unordered-iteration"), 3);
  // 3 writes + 3 metric calls + 3 record_event calls + 3 raw_strings +
  // 3 nested_lambdas.
  EXPECT_EQ(r.count_of("shared-accumulator"), 15);
  EXPECT_EQ(r.count_of("nondeterminism-source"), 5);  // 4 + rand() above
  EXPECT_EQ(r.count_of("wall-clock-in-superstep"), 2);
  EXPECT_EQ(r.count_of("raw-fd-in-superstep"), 3);
  EXPECT_EQ(r.suppressed_count(), 3);
  EXPECT_EQ(r.files_scanned, 13);
}

// --- API-level cases ---------------------------------------------------------

TEST(LintApi, VerbatimPhaseCounterIdiom) {
  const std::string src = R"(
    void f(plum::rt::Engine& eng) {
      int phase = 0;
      eng.run([&](Rank r, const rt::Inbox& in, rt::Outbox& out) {
        if (r == 0) ++phase;
        return phase < 3;
      });
    }
  )";
  const LintResult r = plumlint::lint_source("inline.cpp", src);
  EXPECT_EQ(r.count_of("rank-guard-mutation"), 1) << plumlint::to_json(r);
}

TEST(LintApi, ReversedComparisonAndCompoundCondition) {
  const std::string src = R"(
    void f(plum::rt::Engine& eng, bool flag) {
      int x = 0;
      eng.run([&](Rank rank, const rt::Inbox& in, rt::Outbox& out) {
        if (0 == rank && flag) { x += 1; }
        return false;
      });
    }
  )";
  const LintResult r = plumlint::lint_source("inline.cpp", src);
  EXPECT_EQ(r.count_of("rank-guard-mutation"), 1) << plumlint::to_json(r);
}

TEST(LintApi, OutboxStepComparisonIsNotARankGuard) {
  const std::string src = R"(
    void f(plum::rt::Engine& eng, std::vector<int>& acc) {
      eng.run([&](Rank r, const rt::Inbox& in, rt::Outbox& out) {
        if (out.step() == 0) {
          acc[static_cast<std::size_t>(r)] += 1;
        }
        return false;
      });
    }
  )";
  const LintResult r = plumlint::lint_source("inline.cpp", src);
  EXPECT_EQ(r.unsuppressed_count(), 0) << plumlint::to_json(r);
}

TEST(LintApi, MutatingMethodCallsRespectRankIndexing) {
  const std::string src = R"(
    void f(plum::rt::Engine& eng, std::vector<std::vector<int>>& acc,
           std::vector<int>& log) {
      eng.run([&](Rank r, const rt::Inbox& in, rt::Outbox& out) {
        acc[static_cast<std::size_t>(r)].push_back(1);  // rank-owned row: OK
        std::vector<int> scratch;
        scratch.push_back(2);  // local: OK
        log.push_back(3);      // shared container: flagged
        return false;
      });
    }
  )";
  const LintResult r = plumlint::lint_source("inline.cpp", src);
  EXPECT_EQ(r.count_of("shared-accumulator"), 1) << plumlint::to_json(r);
  EXPECT_EQ(r.unsuppressed_count(), 1) << plumlint::to_json(r);
}

TEST(LintApi, GuardedMetricRecordingIsRankGuardMutation) {
  const std::string src = R"(
    void f(plum::rt::Engine& eng, plum::obs::MetricsRegistry& reg) {
      eng.run([&](Rank r, const rt::Inbox& in, rt::Outbox& out) {
        if (r == 0) {
          reg.add_sample("imbalance", 1.0);  // still sequential-order-reliant
        }
        return false;
      });
    }
  )";
  const LintResult r = plumlint::lint_source("inline.cpp", src);
  EXPECT_EQ(r.count_of("rank-guard-mutation"), 1) << plumlint::to_json(r);
}

TEST(LintApi, NonSuperstepLambdaIsIgnored) {
  // No Rank/Outbox parameters: plain callbacks may mutate captures.
  const std::string src = R"(
    void f(std::vector<int>& v) {
      int sum = 0;
      std::for_each(v.begin(), v.end(), [&](int x) { sum += x; });
    }
  )";
  const LintResult r = plumlint::lint_source("inline.cpp", src);
  EXPECT_EQ(r.unsuppressed_count(), 0) << plumlint::to_json(r);
}

TEST(LintApi, SameLineSuppressionWorks) {
  const std::string src =
      "int f() { return std::rand(); }  "
      "// plum-lint: allow(nondeterminism-source) -- fixture\n";
  const LintResult r = plumlint::lint_source("inline.cpp", src);
  EXPECT_EQ(r.unsuppressed_count(), 0) << plumlint::to_json(r);
  EXPECT_EQ(r.suppressed_count(), 1);
}

TEST(LintApi, IncludeLineIsNotFlagged) {
  const LintResult r = plumlint::lint_source(
      "inline.cpp", "#include <unordered_map>\n#include <ctime>\n");
  EXPECT_EQ(r.unsuppressed_count(), 0) << plumlint::to_json(r);
}

TEST(LintApi, JsonReportShape) {
  const LintResult r =
      plumlint::lint_source("inline.cpp", "int f() { return std::rand(); }\n");
  const std::string json = plumlint::to_json(r);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"nondeterminism-source\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
}

TEST(LintApi, CheckRegistryCoversContract) {
  const auto& cs = plumlint::checks();
  auto has = [&](const std::string& n) {
    for (const auto& c : cs) {
      if (n == c.name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("rank-guard-mutation"));
  EXPECT_TRUE(has("unordered-iteration"));
  EXPECT_TRUE(has("shared-accumulator"));
  EXPECT_TRUE(has("nondeterminism-source"));
  EXPECT_TRUE(has("wall-clock-in-superstep"));
  EXPECT_TRUE(has("bad-suppression"));
  EXPECT_TRUE(has("unused-suppression"));
}

}  // namespace
