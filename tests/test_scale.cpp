// plum-scale's own tests: the symbol index (structs, forward decls,
// same-name fields, rank counts, one-level mutation summaries) is probed
// directly, each check is demonstrated by an exact-count fixture in
// tests/scale_fixtures/ — including the pre-PR-7 dense CommMatrix idiom
// verbatim — and the whole-directory pass pins cross-TU behavior and
// include-order independence.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "index.hpp"
#include "scale.hpp"

namespace {

using plumlint::FileInput;
using plumlint::LintResult;
using plumlint::SymbolIndex;

std::string read_fixture(const std::string& name) {
  std::ifstream in(std::string(PLUM_SCALE_FIXTURE_DIR) + "/" + name);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

FileInput fixture_input(const std::string& name) {
  return {name, read_fixture(name)};
}

std::vector<FileInput> all_fixtures() {
  return {fixture_input("dense_rank.cpp"), fixture_input("helpers_tu.cpp"),
          fixture_input("replicated_state.cpp"),
          fixture_input("scratch_arena.cpp"),
          fixture_input("superstep_tu.cpp")};
}

// --- symbol index -------------------------------------------------------------

TEST(SymbolIndex, StructFieldsAndForwardDeclarations) {
  const SymbolIndex idx = plumlint::build_index(
      {{"a.hpp",
        "struct Later;\n"
        "struct Mesh { int nv; std::map<Index, double> wts; };\n"
        "struct Later { double x; };\n"}});
  // The forward declaration of Later must not shadow (or duplicate) the
  // real definition on line 3.
  ASSERT_NE(idx.find_struct("Later"), nullptr);
  EXPECT_EQ(idx.find_struct("Later")->line, 3);
  ASSERT_EQ(idx.find_struct("Later")->fields.size(), 1u);

  const plumlint::StructInfo* mesh = idx.find_struct("Mesh");
  ASSERT_NE(mesh, nullptr);
  ASSERT_EQ(mesh->fields.size(), 2u);
  EXPECT_EQ(mesh->fields[0].name, "nv");
  EXPECT_EQ(mesh->fields[1].name, "wts");
  EXPECT_NE(mesh->fields[1].type_text.find("map < Index"), std::string::npos);
}

TEST(SymbolIndex, SameNameFieldsInDifferentStructsStayDistinct) {
  const SymbolIndex idx = plumlint::build_index(
      {{"a.hpp", "struct A { int count; };\n"},
       {"b.hpp", "struct B { double count; };\n"}});
  ASSERT_NE(idx.find_struct("A"), nullptr);
  ASSERT_NE(idx.find_struct("B"), nullptr);
  EXPECT_EQ(idx.find_struct("A")->fields[0].type_text, "int");
  EXPECT_EQ(idx.find_struct("B")->fields[0].type_text, "double");
}

TEST(SymbolIndex, SameNameStructsInDifferentFilesKeepBothDefinitions) {
  const SymbolIndex idx = plumlint::build_index(
      {{"x.hpp", "struct Cfg { int a; };\n"},
       {"y.hpp", "struct Cfg { double b; };\n"}});
  // Lexicographically first file is primary; the other keys as Cfg@file.
  ASSERT_NE(idx.find_struct("Cfg"), nullptr);
  EXPECT_EQ(idx.find_struct("Cfg")->file, "x.hpp");
  ASSERT_NE(idx.find_struct("Cfg@y.hpp"), nullptr);
  EXPECT_EQ(idx.find_struct("Cfg@y.hpp")->fields[0].name, "b");
}

TEST(SymbolIndex, MutationSummariesTrackNonConstRefParamsOnly) {
  const SymbolIndex idx = plumlint::build_index({fixture_input(
      "helpers_tu.cpp")});
  const auto& bump = idx.functions.at("bump_total");
  ASSERT_EQ(bump.size(), 1u);
  EXPECT_EQ(bump[0].param_names,
            (std::vector<std::string>{"total", "x"}));
  EXPECT_EQ(bump[0].mutated_params, (std::vector<std::size_t>{0}));

  const auto& log = idx.functions.at("log_value");
  EXPECT_EQ(log[0].mutated_params, (std::vector<std::size_t>{0}));

  const auto& ro = idx.functions.at("read_only");
  EXPECT_TRUE(ro[0].mutated_params.empty());
}

TEST(SymbolIndex, RankCountNamesArePerFilePlusConventional) {
  const SymbolIndex idx = plumlint::build_index(
      {{"a.cpp", "void f(Rank nparts) { (void)nparts; }\n"
                 "void g() { const auto np = eng.nranks(); (void)np; }\n"},
       {"b.cpp", "void h(int nparts) { (void)nparts; }\n"}});
  EXPECT_TRUE(idx.is_rank_count("a.cpp", "nparts"));
  EXPECT_TRUE(idx.is_rank_count("a.cpp", "np"));
  // Rank-typed in a.cpp must not taint the unrelated int in b.cpp.
  EXPECT_FALSE(idx.is_rank_count("b.cpp", "nparts"));
  // Conventional spellings count everywhere.
  EXPECT_TRUE(idx.is_rank_count("b.cpp", "nranks"));
  EXPECT_TRUE(idx.is_rank_count("b.cpp", "world_size"));
}

TEST(SymbolIndex, IncludeOrderDoesNotChangeTheIndex) {
  std::vector<FileInput> files = all_fixtures();
  const SymbolIndex forward = plumlint::build_index(files);
  std::reverse(files.begin(), files.end());
  const SymbolIndex reversed = plumlint::build_index(files);

  ASSERT_EQ(forward.structs.size(), reversed.structs.size());
  for (const auto& [key, s] : forward.structs) {
    ASSERT_TRUE(reversed.structs.count(key)) << key;
    EXPECT_EQ(s.fields.size(), reversed.structs.at(key).fields.size());
  }
  ASSERT_EQ(forward.functions.size(), reversed.functions.size());
  for (const auto& [name, defs] : forward.functions) {
    ASSERT_TRUE(reversed.functions.count(name)) << name;
    ASSERT_EQ(defs.size(), reversed.functions.at(name).size());
    for (std::size_t i = 0; i < defs.size(); ++i) {
      EXPECT_EQ(defs[i].file, reversed.functions.at(name)[i].file);
      EXPECT_EQ(defs[i].mutated_params,
                reversed.functions.at(name)[i].mutated_params);
    }
  }
  ASSERT_EQ(forward.replications.size(), reversed.replications.size());
  for (std::size_t i = 0; i < forward.replications.size(); ++i) {
    EXPECT_EQ(forward.replications[i].struct_name,
              reversed.replications[i].struct_name);
    EXPECT_EQ(forward.replications[i].file, reversed.replications[i].file);
  }
}

// --- checks over fixtures -----------------------------------------------------

TEST(ScaleFixtures, DenseRankContainerExactCounts) {
  const LintResult r = plumlint::scale_files({fixture_input(
      "dense_rank.cpp")});
  // 6 rank-count-sized containers, 2 acknowledged by annotations; the
  // verbatim dense CommMatrix idiom contributes the two P*P products.
  EXPECT_EQ(r.count_of("dense-rank-container", true), 6)
      << plumlint::scale_to_json(r);
  EXPECT_EQ(r.count_of("dense-rank-container"), 4);
  EXPECT_EQ(r.count_of("bad-annotation"), 2);
  EXPECT_EQ(r.count_of("unused-annotation"), 1);
  EXPECT_EQ(r.suppressed_count(), 2);
  int products = 0;
  for (const auto& d : r.diagnostics) {
    if (!d.suppressed && d.message.find("P * P") != std::string::npos) {
      ++products;
    }
  }
  EXPECT_EQ(products, 2);
}

TEST(ScaleFixtures, ReplicatedGlobalStateExactCounts) {
  const LintResult r = plumlint::scale_files({fixture_input(
      "replicated_state.cpp")});
  EXPECT_EQ(r.count_of("replicated-global-state", true), 2)
      << plumlint::scale_to_json(r);
  EXPECT_EQ(r.count_of("replicated-global-state"), 1);
  EXPECT_EQ(r.suppressed_count(), 1);
  // The non-replicated GlobalDirectory must contribute nothing.
  for (const auto& d : r.diagnostics) {
    EXPECT_EQ(d.message.find("GlobalDirectory"), std::string::npos);
  }
}

TEST(ScaleFixtures, InterproceduralNeedsTheCrossFileIndex) {
  // With both TUs the helper summaries reach the superstep callsites...
  const LintResult both = plumlint::scale_files(
      {fixture_input("helpers_tu.cpp"), fixture_input("superstep_tu.cpp")});
  EXPECT_EQ(both.count_of("interprocedural-superstep-mutation"), 2)
      << plumlint::scale_to_json(both);

  // ...and input order cannot matter (the index is built before checks).
  const LintResult swapped = plumlint::scale_files(
      {fixture_input("superstep_tu.cpp"), fixture_input("helpers_tu.cpp")});
  EXPECT_EQ(swapped.count_of("interprocedural-superstep-mutation"), 2);

  // Without the helper TU there is no summary, hence no diagnostic: this
  // is exactly the false negative the project-wide index removes.
  const LintResult alone =
      plumlint::scale_files({fixture_input("superstep_tu.cpp")});
  EXPECT_EQ(alone.count_of("interprocedural-superstep-mutation"), 0);
}

TEST(ScaleFixtures, ScratchAnnotationExactCounts) {
  const LintResult r =
      plumlint::scale_files({fixture_input("scratch_arena.cpp")});
  // 3 rank-sized containers: one acknowledged by `scratch`, one plain, one
  // next to a justification-less scratch (malformed, so not suppressed).
  EXPECT_EQ(r.count_of("dense-rank-container", true), 3)
      << plumlint::scale_to_json(r);
  EXPECT_EQ(r.count_of("dense-rank-container"), 2);
  EXPECT_EQ(r.count_of("bad-annotation"), 1);
  // scratch is declarative: the marker on the non-diagnostic line in
  // declarative_marker() must not surface as unused-annotation.
  EXPECT_EQ(r.count_of("unused-annotation"), 0);
  EXPECT_EQ(r.suppressed_count(), 1);
}

TEST(ScaleFixtures, WholeDirectoryTotals) {
  const LintResult r = plumlint::scale_files(all_fixtures());
  EXPECT_EQ(r.files_scanned, 5);
  EXPECT_EQ(r.count_of("dense-rank-container", true), 9);
  EXPECT_EQ(r.count_of("replicated-global-state", true), 2);
  EXPECT_EQ(r.count_of("interprocedural-superstep-mutation", true), 2);
  EXPECT_EQ(r.count_of("bad-annotation", true), 3);
  EXPECT_EQ(r.count_of("unused-annotation", true), 1);
  EXPECT_EQ(r.suppressed_count(), 4) << plumlint::scale_to_json(r);
}

TEST(ScaleFixtures, JsonReportCarriesScaleCounts) {
  const LintResult r = plumlint::scale_files(all_fixtures());
  const std::string json = plumlint::scale_to_json(r);
  EXPECT_NE(json.find("\"dense-rank-container\": 9"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"replicated-global-state\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"interprocedural-superstep-mutation\": 2"),
            std::string::npos);
}

}  // namespace
