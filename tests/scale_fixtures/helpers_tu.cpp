// plum-scale fixture (analyzed-only, never compiled): helper definitions
// whose one-level mutation summaries feed the interprocedural check in the
// OTHER translation unit (superstep_tu.cpp). No diagnostics expected here.
#include <vector>

namespace plum::fixture {

// Writes through its first parameter: summary says mutated_params = {0}.
void bump_total(double& total, double x) { total += x; }

// Mutating method call on a non-const ref: also summarized.
void log_value(std::vector<double>& log, double x) { log.push_back(x); }

// Const ref + by-value: nothing mutated, never triggers the check.
double read_only(const std::vector<double>& v, double scale) {
  double s = 0.0;
  for (double x : v) s += x * scale;
  return s;
}

}  // namespace plum::fixture
