// plum-scale fixture (analyzed-only, never compiled): the `scratch`
// annotation class — plum-mem arena-backed phase scratch. Expected
// diagnostics:
//   dense-rank-container: 3 total, 1 acknowledged by scratch (suppressed;
//                         the malformed-annotation site stays flagged)
//   bad-annotation: 1 (scratch without a justification)
//   unused-annotation: 0 (scratch is declarative; the marker on the
//                         non-diagnostic line must NOT go stale)
#include <cstdint>
#include <vector>

namespace plum::fixture {

using Rank = std::int32_t;

void staging_buckets(Rank nranks) {
  // plum-scale: scratch -- per-destination staging dies with the superstep
  std::vector<std::int64_t> per_dest(static_cast<std::size_t>(nranks), 0);
  std::vector<double> leak;
  leak.resize(static_cast<std::size_t>(nranks));  // flagged: unannotated
  (void)per_dest;
}

void declarative_marker(int n) {
  // Not rank-sized, so no check fires here; the scratch marker documents
  // the arena backing and must not be reported unused-annotation.
  // plum-scale: scratch -- match state is phase-local arena scratch
  std::vector<int> match(static_cast<std::size_t>(n), -1);
  (void)match;
}

void missing_why(Rank nranks) {
  // plum-scale: scratch
  std::vector<int> counts(static_cast<std::size_t>(nranks));
  (void)counts;
}

}  // namespace plum::fixture
