// plum-scale fixture (analyzed-only, never compiled): superstep lambdas
// calling helpers defined in helpers_tu.cpp. The analyzer only sees the
// danger with the cross-file index: each helper's mutation summary lives
// in the other TU. Expected diagnostics:
//   interprocedural-superstep-mutation: 2 (both in run_with_helpers)
#include <vector>

#include "runtime/engine.hpp"

namespace plum::fixture {

namespace rt = plum::rt;
using plum::Rank;

void run_with_helpers(rt::Engine& eng) {
  double global_sum = 0.0;
  std::vector<double> per_rank(8, 0.0);
  std::vector<double> audit_log;
  eng.run(rt::make_program([&](Rank r, const rt::Inbox& in, rt::Outbox& out) {
    double mine = 1.0;
    bump_total(global_sum, 1.0);        // flagged: captured, shared
    bump_total(per_rank[r], 1.0);       // rank-indexed slot: fine
    bump_total(mine, 2.0);              // body-local: fine
    log_value(audit_log, mine);         // flagged: captured, shared
    (void)read_only(per_rank, 2.0);     // summary says const: fine
    return false;
  }));
}

}  // namespace plum::fixture
