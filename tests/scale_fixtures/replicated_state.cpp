// plum-scale fixture (analyzed-only, never compiled): global-Index-keyed
// state inside a struct that the project replicates once per rank.
// Expected diagnostics:
//   replicated-global-state: 2 total, 1 annotated (suppressed)
#include <cstdint>
#include <map>
#include <vector>

namespace plum::fixture {

using Index = std::int64_t;

// Held once per rank below -> both Index-keyed fields are replicated
// global state; only the annotated one is acknowledged.
struct RankShard {
  std::vector<double> values;  // local-index keyed: fine
  std::map<Index, double> ghost_weights;  // flagged
  // plum-scale: dist(P) -- ghost ownership is O(cut surface), not O(mesh);
  // bounded by the partition quality gate
  std::map<Index, int> ghost_owner;
};

// Never replicated: an Index-keyed field in a singleton is just a map.
struct GlobalDirectory {
  std::map<Index, int> owner_of;
};

struct Shards {
  std::vector<RankShard> per_rank;  // the replication site
};

}  // namespace plum::fixture
