// plum-scale fixture (analyzed-only, never compiled): containers sized by
// rank counts, including the verbatim dense CommMatrix idiom this repo
// shipped before PR 7 made comm accounting sparse. Expected diagnostics:
//   dense-rank-container: 6 total, 2 of them annotated (suppressed),
//                         2 of the unannotated ones O(P*P) products
//   bad-annotation: 2   unused-annotation: 1
#include <cstdint>
#include <vector>

namespace plum::fixture {

using Rank = std::int32_t;

// The pre-PR-7 comm-matrix shape: one dense P*P grid folded per superstep.
// Both assigns are rank-count products -> the strong O(P * P) diagnostic.
struct DenseCommMatrix {
  Rank nranks = 0;
  std::vector<std::int64_t> msgs;
  std::vector<std::int64_t> bytes;
  void resize(Rank n) {
    nranks = n;
    msgs.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
    bytes.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                 0);
  }
};

void plain_sizes(Rank nranks, int world_size) {
  std::vector<double> loads(static_cast<std::size_t>(nranks));  // flagged
  std::vector<int> counts;
  counts.resize(static_cast<std::size_t>(world_size));  // flagged
  (void)loads;
}

void annotated_sizes(Rank nranks) {
  // plum-scale: dist(P) -- one load slot per rank is the point of the table
  std::vector<double> loads(static_cast<std::size_t>(nranks));
  std::vector<int> gather;
  // plum-scale: host-only -- report-time gather on the driver process
  gather.resize(static_cast<std::size_t>(nranks));
  (void)loads;
}

void bad_annotations() {
  // plum-scale: dist(P)
  int no_justification = 0;
  // plum-scale: allow(not-a-check) -- misspelled check name
  int unknown_check = 0;
  // plum-scale: host-only -- nothing on this or the next line is flagged
  int stale = 0;
  (void)no_justification;
  (void)unknown_check;
  (void)stale;
}

}  // namespace plum::fixture
