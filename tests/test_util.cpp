// Unit tests for src/util: radix sort, RNG determinism, stats, timers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/radix_sort.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace plum {
namespace {

TEST(RadixSort, SortsAscendingByKey) {
  std::vector<std::uint64_t> v = {5, 3, 9, 1, 0, 7, 3};
  radix_sort_by_key(v, [](std::uint64_t x) { return x; });
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(RadixSort, SortsDescending) {
  std::vector<std::uint64_t> v = {5, 3, 9, 1, 0, 7, 3};
  radix_sort_descending(v, [](std::uint64_t x) { return x; });
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>()));
}

TEST(RadixSort, EmptyAndSingle) {
  std::vector<std::uint64_t> empty;
  radix_sort_by_key(empty, [](std::uint64_t x) { return x; });
  EXPECT_TRUE(empty.empty());
  std::vector<std::uint64_t> one = {42};
  radix_sort_by_key(one, [](std::uint64_t x) { return x; });
  EXPECT_EQ(one[0], 42u);
}

TEST(RadixSort, StableOnEqualKeys) {
  struct Item {
    std::uint64_t key;
    int tag;
  };
  std::vector<Item> v = {{2, 0}, {1, 1}, {2, 2}, {1, 3}, {2, 4}};
  radix_sort_by_key(v, [](const Item& i) { return i.key; });
  // Equal keys keep original relative order.
  EXPECT_EQ(v[0].tag, 1);
  EXPECT_EQ(v[1].tag, 3);
  EXPECT_EQ(v[2].tag, 0);
  EXPECT_EQ(v[3].tag, 2);
  EXPECT_EQ(v[4].tag, 4);
}

TEST(RadixSort, StableDescendingOnEqualKeys) {
  // Regression: the old implementation sorted ascending then reversed the
  // whole vector, which reversed the relative order of equal keys. A stable
  // descending sort must keep ties in original order — the §4.4 greedy
  // mapper consumes tied similarity entries in enumeration order.
  struct Item {
    std::uint64_t key;
    int tag;
  };
  std::vector<Item> v = {{2, 0}, {2, 1}, {1, 2}, {1, 3}, {2, 4}};
  radix_sort_descending(v, [](const Item& i) { return i.key; });
  EXPECT_EQ(v[0].tag, 0);
  EXPECT_EQ(v[1].tag, 1);
  EXPECT_EQ(v[2].tag, 4);
  EXPECT_EQ(v[3].tag, 2);
  EXPECT_EQ(v[4].tag, 3);
}

TEST(RadixSort, AllZeroKeys) {
  // All-zero inputs hit the early exit on the first pass; order (stability)
  // and contents must be untouched.
  struct Item {
    std::uint64_t key;
    int tag;
  };
  std::vector<Item> v = {{0, 0}, {0, 1}, {0, 2}};
  radix_sort_by_key(v, [](const Item& i) { return i.key; });
  for (int i = 0; i < 3; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)].tag, i);

  std::vector<std::uint64_t> empty;
  radix_sort_by_key(empty, [](std::uint64_t x) { return x; });
  EXPECT_TRUE(empty.empty());
  radix_sort_descending(empty, [](std::uint64_t x) { return x; });
  EXPECT_TRUE(empty.empty());
}

TEST(RadixSort, HighDigitsAfterZeroLowDigits) {
  // Regression for the early-exit restructure: keys whose low bytes are all
  // zero but whose high bytes differ must still be fully sorted (the old
  // exit logic could break after pass 1 with higher digits pending).
  std::vector<std::uint64_t> v = {3ull << 17, 1ull << 16, 1ull << 40,
                                  2ull << 16, 0};
  radix_sort_by_key(v, [](std::uint64_t x) { return x; });
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  radix_sort_descending(v, [](std::uint64_t x) { return x; });
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>()));
}

TEST(RadixSort, LargeRandomMatchesStdSort) {
  Rng rng(7);
  std::vector<std::uint64_t> v(10000);
  for (auto& x : v) x = rng.next();
  auto ref = v;
  radix_sort_by_key(v, [](std::uint64_t x) { return x; });
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(v, ref);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, RangeWithinBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.range(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Stats, ImbalanceOfUniformIsOne) {
  std::vector<long> loads = {10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(imbalance(loads), 1.0);
}

TEST(Stats, ImbalanceOfSkewedLoad) {
  std::vector<long> loads = {30, 10, 10, 10};
  EXPECT_DOUBLE_EQ(imbalance(loads), 30.0 / 15.0);
}

TEST(Stats, ImbalanceAllZeroIsOne) {
  std::vector<long> loads = {0, 0, 0};
  EXPECT_DOUBLE_EQ(imbalance(loads), 1.0);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  ASSERT_GT(sink, 0.0);
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(PhaseTimer, AccumulatesAcrossPhases) {
  PhaseTimer pt;
  pt.begin();
  pt.end();
  pt.begin();
  pt.end();
  EXPECT_EQ(pt.count(), 2);
  EXPECT_GE(pt.total(), 0.0);
  pt.reset();
  EXPECT_EQ(pt.count(), 0);
}

}  // namespace
}  // namespace plum
