// sim::Calibration and the deterministic replay loop (plum-replay/1).
//
// The Calibration suite exercises the estimator in isolation: byte/timing
// fits converging on synthetic drift, gate-margin tracking and clamping,
// Wcomp blend factors, and the disabled no-op contract.
//
// The PlumReplay suite drives the real frameworks: a recorded timing book
// fed back through FrameworkOptions::replay_path must make the whole
// calibration control loop bit-exact across engines and thread counts, and
// replayed calibration must reduce the gate's predicted-vs-measured byte
// drift against the static SP2 constants (the ISSUE's acceptance
// criterion).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "core/dist_framework.hpp"
#include "mesh/box_mesh.hpp"
#include "obs/gate_audit.hpp"
#include "pmesh/migrate.hpp"
#include "sim/calibration.hpp"
#include "solver/init_conditions.hpp"

namespace plum::sim {
namespace {

// --- estimator unit tests ---------------------------------------------------

CalibrationSample byte_sample(std::int64_t elems, std::int64_t sets,
                              std::int64_t predicted, std::int64_t measured) {
  CalibrationSample s;
  s.remap_executed = true;
  s.moved_elems = elems;
  s.moved_sets = sets;
  s.predicted_move_bytes = predicted;
  s.measured_move_bytes = measured;
  return s;
}

/// Bytes a "true" machine would send for (elems, sets).
std::int64_t true_bytes(const MachineParams& truth, std::int64_t elems,
                        std::int64_t sets) {
  return std::llround(
      CostModel(truth).move_bytes_per_element() *
          static_cast<double>(elems) +
      truth.bytes_per_set * static_cast<double>(sets));
}

TEST(Calibration, DisabledObserveIsANoOp) {
  Calibration calib;  // options().enabled defaults to false
  const MachineParams before = calib.params();
  calib.observe(byte_sample(100, 10, 1000, 9000));
  EXPECT_EQ(calib.cycles_observed(), 0);
  EXPECT_EQ(calib.remap_samples(), 0);
  EXPECT_EQ(calib.params().bytes_per_set, before.bytes_per_set);
  EXPECT_EQ(calib.params().gate_margin, before.gate_margin);
}

TEST(Calibration, BytesPerSetDefaultPinsMigrateFraming) {
  // The cost model's default per-set byte overhead mirrors what
  // pmesh::migrate actually charges per (sender, dest) element set; if one
  // side changes, predicted-vs-measured drift becomes structural.
  EXPECT_EQ(MachineParams{}.bytes_per_set,
            static_cast<double>(pmesh::kSetFramingBytes));
}

TEST(Calibration, ByteFitConvergesMonotonicallyOnSyntheticDrift) {
  // Truth machine: 25% heavier element payload, doubled per-set framing.
  MachineParams truth;
  truth.bytes_per_element =
      static_cast<double>(truth.words_per_element) * 8.0 * 1.25;
  truth.bytes_per_set *= 2.0;

  CalibrationOptions opt;
  opt.enabled = true;
  opt.fit_timings = false;
  Calibration calib(MachineParams{}, opt);

  // Varying regressors so the 2-regressor least squares is well posed.
  const std::vector<std::pair<std::int64_t, std::int64_t>> moves = {
      {400, 12}, {900, 40}, {250, 6}, {1300, 55}, {700, 21}, {1800, 90}};
  double prev = 1e30;
  std::vector<double> drifts;
  for (const auto& [elems, sets] : moves) {
    auto s = byte_sample(elems, sets, calib.predicted_bytes(elems, sets),
                         true_bytes(truth, elems, sets));
    calib.observe(s);
    const double d = calib.recalibrated_abs_drift(s);
    drifts.push_back(d);
    // Monotone within a small tolerance: each damped update moves the
    // constants toward the noise-free truth.
    EXPECT_LE(d, prev + 1e-9) << "drift regressed at sample "
                              << drifts.size();
    prev = d;
  }
  EXPECT_LT(drifts.back(), 0.01);  // converged to <1% on the last move
  EXPECT_GT(drifts.front(), 0.10);  // started with real model error
  EXPECT_NEAR(CostModel(calib.params()).move_bytes_per_element(),
              truth.bytes_per_element, truth.bytes_per_element * 0.05);
  EXPECT_NEAR(calib.params().bytes_per_set, truth.bytes_per_set,
              truth.bytes_per_set * 0.10);
}

TEST(Calibration, TimingFitsConvergeToTruthConstants) {
  MachineParams truth;
  truth.t_iter = 130e-6;    // 2x the SP2 default
  truth.t_refine = 95e-6;   // 0.5x
  truth.t_lat = 4.8e-6;     // 2x
  truth.t_setup = 160e-6;   // 2x

  CalibrationOptions opt;
  opt.enabled = true;
  opt.fit_bytes = false;
  opt.tune_gate_margin = false;
  Calibration calib(MachineParams{}, opt);

  const std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t,
                               std::int64_t>>
      cycles = {{5000, 800, 400, 12}, {7000, 1200, 900, 40},
                {4000, 600, 250, 6},  {9000, 1500, 1300, 55},
                {6000, 900, 700, 21}, {8000, 1300, 1800, 90}};
  for (const auto& [work, children, elems, sets] : cycles) {
    CalibrationSample s;
    s.solve_work = work;
    s.refine_children = children;
    s.solve_seconds = truth.t_iter * static_cast<double>(work);
    s.subdivide_seconds = truth.t_refine * static_cast<double>(children);
    s.remap_executed = true;
    s.moved_elems = elems;
    s.moved_sets = sets;
    s.remap_seconds =
        static_cast<double>(truth.words_per_element) *
            static_cast<double>(elems) * truth.t_lat +
        static_cast<double>(sets) * truth.t_setup;
    calib.observe(s);
  }
  EXPECT_NEAR(calib.params().t_iter, truth.t_iter, truth.t_iter * 0.05);
  EXPECT_NEAR(calib.params().t_refine, truth.t_refine,
              truth.t_refine * 0.05);
  EXPECT_NEAR(calib.params().t_lat, truth.t_lat, truth.t_lat * 0.10);
  EXPECT_NEAR(calib.params().t_setup, truth.t_setup, truth.t_setup * 0.10);
}

TEST(Calibration, GateMarginTracksRealizedRatioAndClamps) {
  CalibrationOptions opt;
  opt.enabled = true;
  opt.fit_timings = false;
  opt.fit_bytes = false;  // keep predictions static so the ratio stays 3x
  opt.max_gate_margin = 2.0;
  Calibration calib(MachineParams{}, opt);
  for (int i = 0; i < 12; ++i) {
    calib.observe(byte_sample(100, 4, 1000, 3000));
  }
  // EWMA toward 3.0, clamped at the configured max.
  EXPECT_DOUBLE_EQ(calib.params().gate_margin, 2.0);

  Calibration under(MachineParams{}, opt);
  for (int i = 0; i < 12; ++i) {
    under.observe(byte_sample(100, 4, 1000, 100));  // 10x overprediction
  }
  EXPECT_DOUBLE_EQ(under.params().gate_margin, opt.min_gate_margin);

  // A calibrated margin gates the accept decision: same gain/cost, higher
  // margin, flipped verdict.
  MachineParams strict;
  strict.gate_margin = 2.0;
  EXPECT_TRUE(CostModel(MachineParams{}).accept_remap(1.5, 1.0));
  EXPECT_FALSE(CostModel(strict).accept_remap(1.5, 1.0));
}

TEST(Calibration, WeightBlendingScalesSlowRanksAndClamps) {
  CalibrationOptions opt;
  opt.enabled = true;
  opt.blend_measured_weights = true;
  opt.damping = 1.0;  // undamped so one sample fully determines the scale
  opt.max_weight_scale = 2.0;
  Calibration calib(MachineParams{}, opt);

  CalibrationSample s;
  // Rank 1 is 3x slower per element, rank 2 pathologically 10x faster.
  s.rank_elements = {100, 100, 100};
  s.rank_solve_seconds = {1.0, 3.0, 0.1};
  calib.observe(s);
  const auto& scale = calib.rank_weight_scale();
  ASSERT_EQ(scale.size(), 3u);
  const double mean_per_elem = (1.0 + 3.0 + 0.1) / 300.0;
  EXPECT_NEAR(scale[0], (1.0 / 100.0) / mean_per_elem, 1e-12);
  EXPECT_NEAR(scale[1], 2.0, 1e-12);  // 3x slower, clamped to max 2.0
  EXPECT_NEAR(scale[2], 0.5, 1e-12);  // clamped to 1/max

  // blend_weights keys by owner, rounds to integer Weight, floors at 1.
  std::vector<Weight> wcomp = {10, 10, 10, 1};
  const std::vector<Rank> owner = {0, 1, 2, 2};
  blend_weights(wcomp, owner, scale);
  EXPECT_EQ(wcomp[1], 20);
  EXPECT_EQ(wcomp[2], 5);
  EXPECT_EQ(wcomp[3], 1);  // 1 * 0.5 rounds to 1 via the floor

  std::vector<Weight> untouched = {7, 7};
  blend_weights(untouched, {0, 1}, {});
  EXPECT_EQ(untouched, (std::vector<Weight>{7, 7}));
}

TEST(Calibration, ToJsonCarriesScopeAndDeterministicParams) {
  CalibrationOptions opt;
  opt.enabled = true;
  opt.fit_timings = false;
  Calibration calib(MachineParams{}, opt);
  calib.observe(byte_sample(500, 20, calib.predicted_bytes(500, 20),
                            true_bytes(MachineParams{}, 500, 20) * 2));
  const obs::Json doc = calib.to_json();
  EXPECT_EQ(doc.find("schema")->as_string(), "plum-calibration/1");
  EXPECT_EQ(doc.find("cycles_observed")->as_int(), 1);
  EXPECT_EQ(doc.find("remap_samples")->as_int(), 1);
  EXPECT_GT(doc.find("mean_abs_drift")->as_double(), 0.5);
  const obs::Json* params = doc.find("params");
  ASSERT_NE(params, nullptr);
  for (const char* field : {"t_iter", "t_refine", "t_lat", "t_setup",
                            "bytes_per_element", "bytes_per_set",
                            "gate_margin"}) {
    EXPECT_NE(params->find(field), nullptr) << field;
  }
}

// --- replay book ------------------------------------------------------------

TEST(PlumReplay, BookRoundTripsThroughDiskByteIdentically) {
  sim::ReplayBook book;
  for (int i = 0; i < 3; ++i) {
    ReplayCycle c;
    c.solve_seconds = 0.001 * (i + 1);
    c.remap_seconds = 0.0005 * (i + 1);
    c.subdivide_seconds = 0.002 * (i + 1);
    if (i != 1) c.rank_solve_seconds = {0.0001, 0.0002, 0.0003};
    book.cycles.push_back(c);
  }
  const std::string path =
      testing::TempDir() + "/plum_replay_roundtrip.json";
  ASSERT_TRUE(book.save(path));
  ReplayBook loaded;
  std::string err;
  ASSERT_TRUE(ReplayBook::load(path, &loaded, &err)) << err;
  EXPECT_EQ(loaded.to_json().dump(), book.to_json().dump());
  std::remove(path.c_str());
}

TEST(PlumReplay, ParseRejectsMalformedBooks) {
  ReplayBook out;
  std::string err;
  obs::Json doc;
  ASSERT_TRUE(obs::Json::parse(R"({"schema":"plum-replay/2","cycles":[]})",
                               &doc, &err));
  EXPECT_FALSE(ReplayBook::parse(doc, &out, &err));
  EXPECT_NE(err.find("schema"), std::string::npos);

  ASSERT_TRUE(obs::Json::parse(
      R"({"schema":"plum-replay/1","cycles":[{"solve_seconds":-1}]})", &doc,
      &err));
  EXPECT_FALSE(ReplayBook::parse(doc, &out, &err));

  ASSERT_TRUE(obs::Json::parse(
      R"({"schema":"plum-replay/1","cycles":[{"rank_solve_seconds":[1,"x"]}]})",
      &doc, &err));
  EXPECT_FALSE(ReplayBook::parse(doc, &out, &err));

  ASSERT_TRUE(obs::Json::parse(R"({"schema":"plum-replay/1"})", &doc, &err));
  EXPECT_FALSE(ReplayBook::parse(doc, &out, &err));
}

TEST(PlumReplay, FixtureBookLoads) {
  ReplayBook book;
  std::string err;
  ASSERT_TRUE(ReplayBook::load(
      std::string(PLUM_REPLAY_FIXTURE_DIR) + "/book_small.json", &book, &err))
      << err;
  ASSERT_EQ(book.cycles.size(), 3u);
  EXPECT_DOUBLE_EQ(book.cycles[0].solve_seconds, 0.0024);
  EXPECT_EQ(book.cycles[2].rank_solve_seconds.size(), 8u);
}

// --- framework replay loop --------------------------------------------------

core::DistFramework make_dist(core::FrameworkOptions opt, int boxn) {
  auto mesh = mesh::make_box_mesh(mesh::small_box(boxn));
  core::DistFramework fw(std::move(mesh), opt);
  solver::BlastSpec blast;
  blast.radius = 0.2;
  for (Rank r = 0; r < opt.nranks; ++r) {
    solver::init_blast(fw.dist_mesh().local(r).mesh, fw.solver().solution(r),
                       blast);
  }
  return fw;
}

/// Options that reliably produce accepted remaps in consecutive cycles
/// (mirrors test_dist_framework's transport determinism setup).
core::FrameworkOptions remap_heavy_options() {
  core::FrameworkOptions opt;
  opt.nranks = 8;
  opt.refine_fraction = 0.08;
  opt.imbalance_trigger = 1.02;
  opt.solver_steps_per_cycle = 3;
  return opt;
}

TEST(PlumReplay, CalibrationIsByteIdenticalAcrossEnginesAndThreads) {
  // Full fits on: under replay every calibrated constant is a pure function
  // of the book and the deterministic counters, so the sequential Engine
  // (threads = 1) and the ParallelEngine (threads = 2, 4) must agree to the
  // byte — calibration document, deterministic trace view (which embeds the
  // calibration section), metrics gauges, and the re-recorded book shape.
  auto run = [](int threads) {
    core::FrameworkOptions opt = remap_heavy_options();
    opt.threads = threads;
    opt.replay_path =
        std::string(PLUM_REPLAY_FIXTURE_DIR) + "/book_small.json";
    opt.calibration.blend_measured_weights = true;
    auto fw = make_dist(opt, 5);
    for (int i = 0; i < 3; ++i) fw.cycle();
    return std::make_tuple(fw.calibration().to_json().dump(),
                           fw.trace().deterministic_json(),
                           fw.metrics().deterministic_json().dump(),
                           fw.replay_log().cycles.size());
  };
  const auto seq = run(1);
  const auto par2 = run(2);
  const auto par4 = run(4);
  EXPECT_EQ(std::get<0>(seq), std::get<0>(par2));
  EXPECT_EQ(std::get<0>(seq), std::get<0>(par4));
  EXPECT_EQ(std::get<1>(seq), std::get<1>(par2));
  EXPECT_EQ(std::get<1>(seq), std::get<1>(par4));
  EXPECT_EQ(std::get<2>(seq), std::get<2>(par2));
  EXPECT_EQ(std::get<2>(seq), std::get<2>(par4));
  EXPECT_EQ(std::get<3>(seq), 3u);
  EXPECT_EQ(std::get<3>(par4), 3u);

  // The replayed calibration actually moved: the solve constant follows the
  // book's seconds, not the SP2 default.
  EXPECT_GT(std::get<0>(seq).size(), 0u);
  EXPECT_NE(std::get<0>(seq).find("plum-calibration/1"), std::string::npos);
}

TEST(PlumReplay, ReplayedCalibrationReducesMeanAbsGateDrift) {
  // Pass 1: static constants. Record the timing book and the gate's
  // decision-time |drift| on every accepted remap.
  core::FrameworkOptions opt = remap_heavy_options();
  auto fw_static = make_dist(opt, 5);
  for (int i = 0; i < 3; ++i) fw_static.cycle();

  double static_sum = 0;
  int static_n = 0;
  for (const auto& rec : fw_static.trace().gate_records()) {
    if (!rec.evaluated || !rec.accepted) continue;
    static_sum += std::fabs(rec.drift);
    ++static_n;
  }
  ASSERT_GE(static_n, 2) << "scenario must accept remaps in >= 2 cycles";
  const double static_mean = static_sum / static_n;

  const std::string book_path =
      testing::TempDir() + "/plum_replay_recorded.json";
  ASSERT_TRUE(fw_static.replay_log().save(book_path));

  // Pass 2: replay the recorded book with only the byte fit active, so the
  // gate's gain/cost arithmetic — and therefore the accept decisions and
  // migrations — are identical to pass 1, while the byte predictions
  // recalibrate after every accepted remap.
  core::FrameworkOptions ropt = remap_heavy_options();
  ropt.replay_path = book_path;
  ropt.calibration.fit_timings = false;
  ropt.calibration.tune_gate_margin = false;
  auto fw_replay = make_dist(ropt, 5);
  for (int i = 0; i < 3; ++i) fw_replay.cycle();

  double replay_sum = 0;
  int replay_n = 0;
  for (const auto& rec : fw_replay.trace().gate_records()) {
    if (!rec.evaluated || !rec.accepted) continue;
    replay_sum += std::fabs(rec.drift);
    ++replay_n;
  }
  ASSERT_EQ(replay_n, static_n)
      << "byte-only calibration must not change gate decisions";
  const double replay_mean = replay_sum / replay_n;

  EXPECT_LT(replay_mean, static_mean)
      << "calibrated byte predictions must reduce mean |gate_drift|";
  EXPECT_EQ(fw_replay.calibration().remap_samples(), replay_n);
  std::remove(book_path.c_str());
}

TEST(PlumReplay, BookShorterThanRunStillCalibratesBytes) {
  // Replay past the end of the book: timing evidence stops, but the
  // counter-sourced byte fit keeps observing every cycle.
  sim::ReplayBook one;
  one.cycles.push_back({0.001, 0.0005, 0.002, {}});
  const std::string path = testing::TempDir() + "/plum_replay_short.json";
  ASSERT_TRUE(one.save(path));

  core::FrameworkOptions opt = remap_heavy_options();
  opt.replay_path = path;
  auto fw = make_dist(opt, 5);
  for (int i = 0; i < 2; ++i) fw.cycle();
  EXPECT_EQ(fw.calibration().cycles_observed(), 2);
  EXPECT_EQ(fw.replay_log().cycles.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace plum::sim
