// Unit tests for src/mesh: construction, topology counts, box generator,
// dual graph hookup, quality metrics, geometry.

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/box_mesh.hpp"
#include "mesh/quality.hpp"
#include "mesh/tet_mesh.hpp"

namespace plum::mesh {
namespace {

TetMesh single_tet() {
  std::vector<Vec3> v = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<std::array<Index, 4>> t = {{0, 1, 2, 3}};
  return TetMesh::from_cells(v, t);
}

TEST(TetMesh, SingleTetCounts) {
  const auto m = single_tet();
  m.validate();
  EXPECT_EQ(m.num_vertices(), 4);
  EXPECT_EQ(m.num_edges(), 6);
  EXPECT_EQ(m.num_active_elements(), 1);
  EXPECT_EQ(m.num_active_bfaces(), 4);
  EXPECT_NEAR(m.total_volume(), 1.0 / 6.0, 1e-12);
}

TEST(TetMesh, SingleTetAllBoundary) {
  const auto m = single_tet();
  for (Index v = 0; v < m.num_vertices(); ++v) {
    EXPECT_TRUE(m.vertex(v).boundary);
  }
  for (Index e = 0; e < m.num_edges(); ++e) {
    EXPECT_TRUE(m.edge(e).boundary);
  }
}

TEST(TetMesh, NegativeOrientationFixed) {
  std::vector<Vec3> v = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  // Swapped order gives negative volume; from_cells must fix it.
  std::vector<std::array<Index, 4>> t = {{0, 1, 3, 2}};
  const auto m = TetMesh::from_cells(v, t);
  EXPECT_GT(m.element_volume(0), 0.0);
}

TEST(TetMesh, TwoTetsShareInteriorFace) {
  std::vector<Vec3> v = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}};
  std::vector<std::array<Index, 4>> t = {{0, 1, 2, 3}, {1, 2, 3, 4}};
  const auto m = TetMesh::from_cells(v, t);
  m.validate();
  EXPECT_EQ(m.num_active_elements(), 2);
  // 8 boundary faces (4+4 minus the 2 copies of the shared face).
  EXPECT_EQ(m.num_active_bfaces(), 6);
  EXPECT_EQ(m.num_edges(), 9);
}

TEST(TetMesh, EdgeLookup) {
  const auto m = single_tet();
  EXPECT_NE(m.find_edge(0, 1), kInvalidIndex);
  EXPECT_EQ(m.find_edge(0, 1), m.find_edge(1, 0));
}

TEST(TetMesh, EdgeElementListsMatchTopology) {
  const auto m = single_tet();
  for (Index e = 0; e < m.num_edges(); ++e) {
    EXPECT_EQ(m.edge_elements(e).size(), 1u);
  }
}

TEST(TetMesh, BisectEdgeCreatesMidpointAndChildren) {
  auto m = single_tet();
  const Index e = m.find_edge(0, 1);
  Index hook_parent = kInvalidIndex, hook_mid = kInvalidIndex;
  m.on_bisect = [&](Index pe, Index mid) {
    hook_parent = pe;
    hook_mid = mid;
  };
  const Index mid = m.bisect_edge(e);
  EXPECT_EQ(m.num_vertices(), 5);
  EXPECT_EQ(m.edge(e).mid, mid);
  EXPECT_FALSE(m.edge(e).is_leaf());
  EXPECT_EQ(hook_parent, e);
  EXPECT_EQ(hook_mid, mid);
  // Midpoint geometry.
  const Vec3 p = m.vertex(mid).pos;
  EXPECT_DOUBLE_EQ(p.x, 0.5);
  EXPECT_DOUBLE_EQ(p.y, 0.0);
  // Idempotent.
  EXPECT_EQ(m.bisect_edge(e), mid);
  EXPECT_EQ(m.num_vertices(), 5);
}

TEST(TetMesh, BisectBoundaryEdgePropagatesFlag) {
  auto m = single_tet();
  const Index e = m.find_edge(0, 1);
  const Index mid = m.bisect_edge(e);
  EXPECT_TRUE(m.vertex(mid).boundary);
  EXPECT_TRUE(m.edge(m.edge(e).child[0]).boundary);
}

TEST(BoxMesh, CellAndVertexCounts) {
  const auto m = make_box_mesh(small_box(2));
  m.validate();
  EXPECT_EQ(m.num_active_elements(), 6 * 8);
  EXPECT_EQ(m.num_vertices(), 27);
  EXPECT_NEAR(m.total_volume(), 1.0, 1e-12);
}

TEST(BoxMesh, BoundaryFaceCount) {
  // Each boundary cell face contributes 2 triangles: 6 sides * n^2 * 2.
  const auto m = make_box_mesh(small_box(3));
  EXPECT_EQ(m.num_active_bfaces(), 6 * 9 * 2);
}

TEST(BoxMesh, PaperScaleElementCount) {
  const auto spec = paper_scale_box();
  // 22*22*21*6 = 60984 — the scale of the paper's 60,968-element mesh.
  EXPECT_EQ(spec.nx * spec.ny * spec.nz * 6, 60984);
}

TEST(BoxMesh, DualGraphIsConnectedAndBounded) {
  const auto m = make_box_mesh(small_box(2));
  const auto d = m.build_initial_dual();
  d.validate();
  EXPECT_EQ(d.num_vertices(), m.num_initial_elements());
  for (Index v = 0; v < d.num_vertices(); ++v) EXPECT_LE(d.degree(v), 4);
}

TEST(BoxMesh, RootWeightsInitiallyUnit) {
  const auto m = make_box_mesh(small_box(2));
  const auto w = m.root_weights();
  for (Index t = 0; t < m.num_initial_elements(); ++t) {
    EXPECT_EQ(w.wcomp[t], 1);
    EXPECT_EQ(w.wremap[t], 1);
  }
}

TEST(Quality, RegularTetHasQualityOne) {
  // Regular tetrahedron inscribed in a cube.
  std::vector<Vec3> v = {{0, 0, 0}, {1, 1, 0}, {1, 0, 1}, {0, 1, 1}};
  std::vector<std::array<Index, 4>> t = {{0, 1, 2, 3}};
  const auto m = TetMesh::from_cells(v, t);
  EXPECT_NEAR(radius_ratio(m, 0), 1.0, 1e-9);
}

TEST(Quality, KuhnTetIsReasonable) {
  const auto m = make_box_mesh(small_box(1));
  const auto q = mesh_quality(m);
  EXPECT_GT(q.min, 0.2);
  EXPECT_LE(q.max, 1.0);
}

TEST(Geometry, CentroidOfUnitTet) {
  const auto m = single_tet();
  const Vec3 c = m.element_centroid(0);
  EXPECT_NEAR(c.x, 0.25, 1e-12);
  EXPECT_NEAR(c.y, 0.25, 1e-12);
  EXPECT_NEAR(c.z, 0.25, 1e-12);
}

TEST(Geometry, EdgeLength) {
  const auto m = single_tet();
  EXPECT_NEAR(m.edge_length(m.find_edge(1, 2)), std::sqrt(2.0), 1e-12);
}

TEST(BoxMesh, AnisotropicDomainVolume) {
  BoxSpec spec;
  spec.nx = 4;
  spec.ny = 2;
  spec.nz = 3;
  spec.lo = {-1, 0, 2};
  spec.hi = {3, 1, 5};
  const auto m = make_box_mesh(spec);
  m.validate();
  EXPECT_NEAR(m.total_volume(), 4.0 * 1.0 * 3.0, 1e-12);
  EXPECT_EQ(m.num_active_elements(), 6 * 4 * 2 * 3);
}

TEST(BoxMesh, BoundaryFlagsExactlyOnHull) {
  const auto m = make_box_mesh(small_box(3));
  for (Index v = 0; v < m.num_vertices(); ++v) {
    const auto& p = m.vertex(v).pos;
    const bool on_hull = p.x == 0 || p.x == 1 || p.y == 0 || p.y == 1 ||
                         p.z == 0 || p.z == 1;
    EXPECT_EQ(m.vertex(v).boundary, on_hull) << "vertex " << v;
  }
}

TEST(TetMesh, PurgeCompactKeepsInitialPrefix) {
  auto m = make_box_mesh(small_box(1));
  // Nothing dead: compaction is the identity.
  const auto map = m.purge_and_compact();
  ASSERT_EQ(static_cast<Index>(map.size()), m.num_vertices());
  for (Index v = 0; v < m.num_vertices(); ++v) EXPECT_EQ(map[v], v);
  m.validate();
}

}  // namespace
}  // namespace plum::mesh
