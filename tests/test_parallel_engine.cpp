// Cross-engine determinism: the ParallelEngine must reproduce the
// sequential Engine bit-for-bit — identical message delivery (content and
// order), identical StepCounters ledgers, identical floating-point results
// — on representative workloads: a raw message storm, the collectives, a
// parallel solver sweep, subtree migration (the remap data-movement path),
// and full adaption cycles through DistFramework.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "core/dist_framework.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"
#include "mesh/box_mesh.hpp"
#include "partition/multilevel.hpp"
#include "pmesh/dist_mesh.hpp"
#include "pmesh/migrate.hpp"
#include "pmesh/parallel_adapt.hpp"
#include "pmesh/parallel_solver.hpp"
#include "runtime/collectives.hpp"
#include "runtime/engine.hpp"
#include "solver/init_conditions.hpp"
#include "util/rng.hpp"

namespace plum {
namespace {

using rt::Engine;
using rt::Inbox;
using rt::Outbox;
using rt::ParallelEngine;

/// One rank's observation of one delivered message.
struct Delivery {
  int step;
  Rank to;
  Rank from;
  int tag;
  std::vector<std::byte> bytes;

  friend bool operator==(const Delivery&, const Delivery&) = default;
};

/// Runs a message storm: every rank sends a rank-seeded pseudo-random batch
/// of messages each superstep, and records everything it receives into its
/// own trace slot (rank-safe). Returns the per-rank traces.
std::vector<std::vector<Delivery>> run_storm(Engine& eng, int steps) {
  const Rank p = eng.nranks();
  std::vector<std::vector<Delivery>> trace(static_cast<std::size_t>(p));
  eng.run([&](Rank r, const Inbox& in, Outbox& out) {
    for (const auto& m : in.messages()) {
      trace[static_cast<std::size_t>(r)].push_back(
          {out.step(), r, m.from, m.tag, m.bytes});
    }
    if (out.step() >= steps) return false;
    // Seeded by (rank, step): both engines generate the identical sends.
    Rng rng(static_cast<std::uint64_t>(r) * 7919 +
            static_cast<std::uint64_t>(out.step()) * 104729 + 1);
    const int nsend = static_cast<int>(rng.below(4));
    for (int k = 0; k < nsend; ++k) {
      const Rank to = static_cast<Rank>(rng.below(static_cast<std::uint64_t>(p)));
      const int tag = static_cast<int>(rng.below(3));
      std::vector<std::int32_t> payload(rng.below(16) + 1);
      for (auto& v : payload) v = static_cast<std::int32_t>(rng.next());
      out.send_vec(to, tag, payload);
    }
    out.charge(static_cast<std::int64_t>(rng.below(100)));
    return true;
  });
  return trace;
}

TEST(CrossEngine, MessageStormIdenticalDeliveryAndLedger) {
  const Rank p = 8;
  Engine seq(p);
  const auto seq_trace = run_storm(seq, 6);

  for (int threads : {1, 2, 4, 13}) {
    ParallelEngine par(p, threads);
    const auto par_trace = run_storm(par, 6);
    EXPECT_EQ(par_trace, seq_trace) << "threads=" << threads;
    EXPECT_EQ(par.ledger(), seq.ledger()) << "threads=" << threads;
  }
}

// The transport contract (runtime/transport.hpp): InProc and Pipe must be
// indistinguishable to rank programs. Same storm, both engines, both
// transports, several group counts — delivery traces (content and order),
// ledgers, and comm matrices must all be bit-identical to the sequential
// in-proc reference.
TEST(CrossTransport, MessageStormIdenticalInboxesLedgersAndCommMatrices) {
  for (Rank p : {4, 8}) {
    Engine ref(p);
    const auto want = run_storm(ref, 6);
    for (int threads : {1, 4}) {
      for (int groups : {0, 1, 3}) {
        auto eng =
            rt::make_engine(p, threads, rt::TransportKind::kPipe, groups);
        const auto got = run_storm(*eng, 6);
        const std::string where = "p=" + std::to_string(p) +
                                  " threads=" + std::to_string(threads) +
                                  " groups=" + std::to_string(groups);
        EXPECT_EQ(got, want) << where;
        EXPECT_EQ(eng->ledger(), ref.ledger()) << where;
        EXPECT_EQ(eng->ledger().comm_matrix(), ref.ledger().comm_matrix())
            << where;
      }
    }
  }
}

// plum-scope determinism contract: with a FlightRecorder attached as the
// engine's RankScopeSink, the recorder's deterministic view (steps, phases,
// ticks — wall_ns excluded) must be byte-identical across the sequential
// engine and the parallel engine at every thread count, and attaching the
// recorder must not perturb the trace's own deterministic view.
TEST(CrossEngine, FlightRecorderDeterministicViewByteIdentical) {
  const Rank p = 8;
  auto run_with_scope = [&](Engine& eng) {
    obs::FlightRecorder scope(p, 16);
    obs::TraceRecorder trace;
    eng.set_observer(&trace);
    eng.set_scope_sink(&scope);
    trace.set_flight_recorder(&scope);
    {
      obs::PhaseScope ph(trace, "storm");
      run_storm(eng, 6);
    }
    eng.set_observer(nullptr);
    eng.set_scope_sink(nullptr);
    return std::make_pair(scope.deterministic_json().dump(),
                          trace.deterministic_json());
  };

  Engine seq(p);
  const auto want = run_with_scope(seq);
  // Every rank ran 7 supersteps (6 sending + the final quiescent one).
  {
    obs::FlightRecorder probe(p, 16);
    Engine again(p);
    again.set_scope_sink(&probe);
    run_storm(again, 6);
    for (Rank r = 0; r < p; ++r) {
      EXPECT_EQ(probe.events_recorded(r), 7u) << "rank " << r;
    }
  }

  for (int threads : {1, 2, 4}) {
    ParallelEngine par(p, threads);
    const auto got = run_with_scope(par);
    EXPECT_EQ(got.first, want.first) << "threads=" << threads;
    EXPECT_EQ(got.second, want.second) << "threads=" << threads;
  }

  // The recorder must not change what the trace records: a recorder-free
  // run serializes the identical deterministic trace.
  Engine bare(p);
  obs::TraceRecorder bare_trace;
  bare.set_observer(&bare_trace);
  {
    obs::PhaseScope ph(bare_trace, "storm");
    run_storm(bare, 6);
  }
  EXPECT_EQ(bare_trace.deterministic_json(), want.second);
}

TEST(CrossEngine, RingPassMatches) {
  const Rank p = 6;
  auto ring = [&](Engine& eng) {
    std::vector<int> received(static_cast<std::size_t>(p), -1);
    eng.run([&](Rank r, const Inbox& in, Outbox& out) {
      if (out.step() == 0) {
        out.send_vec<int>((r + 1) % p, 0, {static_cast<int>(r)});
        return true;
      }
      for (const auto& m : in.messages()) {
        received[static_cast<std::size_t>(r)] = rt::unpack<int>(m)[0];
      }
      return false;
    });
    return received;
  };
  Engine seq(p);
  ParallelEngine par(p);
  EXPECT_EQ(ring(par), ring(seq));
  for (Rank r = 0; r < p; ++r) {
    EXPECT_EQ(ring(seq)[static_cast<std::size_t>(r)], (r + p - 1) % p);
  }
}

TEST(CrossEngine, CollectivesMatch) {
  const Rank p = 5;
  Engine seq(p);
  ParallelEngine par(p, 4);

  std::vector<std::vector<std::vector<int>>> input(static_cast<std::size_t>(p));
  for (Rank r = 0; r < p; ++r) {
    input[static_cast<std::size_t>(r)].resize(static_cast<std::size_t>(p));
    for (Rank to = 0; to < p; ++to) {
      input[static_cast<std::size_t>(r)][static_cast<std::size_t>(to)] = {
          r * 100 + to, -r};
    }
  }
  EXPECT_EQ(rt::all_to_all(par, input), rt::all_to_all(seq, input));

  std::vector<std::vector<double>> rows(static_cast<std::size_t>(p));
  for (Rank r = 0; r < p; ++r) {
    rows[static_cast<std::size_t>(r)] = {0.5 * r, 1.0 / (r + 1)};
  }
  EXPECT_EQ(rt::gather(par, rows, 0), rt::gather(seq, rows, 0));
  EXPECT_EQ(rt::allgather(par, rows), rt::allgather(seq, rows));

  std::vector<std::int64_t> vals = {3, 1, 4, 1, 5};
  auto mx = [](std::int64_t a, std::int64_t b) { return std::max(a, b); };
  EXPECT_EQ(rt::allreduce(par, vals, mx, std::int64_t{0}),
            rt::allreduce(seq, vals, mx, std::int64_t{0}));
  EXPECT_EQ(par.ledger(), seq.ledger());
}

/// Distributes a box mesh over `p` ranks (deterministic partition).
pmesh::DistMesh make_dist_mesh(int boxn, Rank p) {
  auto global = mesh::make_box_mesh(mesh::small_box(boxn));
  const auto dual = global.build_initial_dual();
  partition::MultilevelOptions popt;
  popt.nparts = p;
  const auto part = partition::partition(dual, popt).part;
  return pmesh::DistMesh(global, part, p);
}

TEST(CrossEngine, SolverSweepBitIdentical) {
  const Rank p = 6;
  auto sweep = [&](Engine& eng) {
    auto dm = make_dist_mesh(6, p);
    pmesh::ParallelEulerSolver solver(&dm, &eng);
    solver::BlastSpec blast;
    blast.radius = 0.25;
    for (Rank r = 0; r < p; ++r) {
      solver::init_blast(dm.local(r).mesh, solver.solution(r), blast);
    }
    solver.run(5);
    solver.validate_replication();
    std::vector<std::vector<double>> rho(static_cast<std::size_t>(p));
    for (Rank r = 0; r < p; ++r) rho[static_cast<std::size_t>(r)] = solver.density_field(r);
    return std::make_tuple(solver.totals(), std::move(rho), eng.ledger());
  };

  Engine seq(p);
  ParallelEngine par(p, 4);
  const auto [t_seq, rho_seq, led_seq] = sweep(seq);
  const auto [t_par, rho_par, led_par] = sweep(par);

  // Bit-identical floating point: accumulation order is fixed by the
  // sender-ordered delivery contract, so == (not near) is correct.
  for (int c = 0; c < solver::kNumVars; ++c) EXPECT_EQ(t_par[c], t_seq[c]);
  EXPECT_EQ(rho_par, rho_seq);
  EXPECT_EQ(led_par, led_seq);
}

TEST(CrossEngine, ParallelMarkAndRefineIdentical) {
  const Rank p = 5;
  auto adaptit = [&](Engine& eng) {
    auto dm = make_dist_mesh(6, p);
    std::vector<std::vector<char>> seeds(static_cast<std::size_t>(p));
    for (Rank r = 0; r < p; ++r) {
      auto& lm = dm.local(r);
      auto& s = seeds[static_cast<std::size_t>(r)];
      s.assign(static_cast<std::size_t>(lm.mesh.num_edges()), 0);
      Rng rng(static_cast<std::uint64_t>(r) + 17);
      for (auto& v : s) v = rng.uniform() < 0.04;
    }
    const auto pm = pmesh::parallel_mark(dm, eng, seeds);
    const auto pf = pmesh::parallel_refine(dm, eng, pm);
    dm.validate();
    std::vector<Index> elems = dm.active_elements_per_rank();
    return std::make_tuple(pm.comm_rounds, pm.marks_exchanged,
                           pf.work_per_rank, pf.new_shared_edges,
                           pf.new_shared_verts, std::move(elems),
                           eng.ledger());
  };

  Engine seq(p);
  ParallelEngine par(p, 3);
  EXPECT_EQ(adaptit(par), adaptit(seq));
}

TEST(CrossEngine, MigrateRemapIdentical) {
  const Rank p = 4;
  auto migrateit = [&](Engine& eng) {
    auto dm = make_dist_mesh(5, p);
    pmesh::ParallelEulerSolver solver(&dm, &eng);
    solver::BlastSpec blast;
    for (Rank r = 0; r < p; ++r) {
      solver::init_blast(dm.local(r).mesh, solver.solution(r), blast);
    }
    solver.run(2);
    std::vector<std::vector<solver::State>> states;
    for (Rank r = 0; r < p; ++r) states.push_back(solver.solution(r));

    // Deterministically reassign a quarter of the roots round-robin — a
    // representative remap's data movement.
    const Index nroots = static_cast<Index>([&] {
      Index n = 0;
      for (Rank r = 0; r < p; ++r) {
        n += static_cast<Index>(dm.local(r).root_global.size());
      }
      return n;
    }());
    partition::PartVec new_part(static_cast<std::size_t>(nroots), kNoRank);
    for (Rank r = 0; r < p; ++r) {
      for (Index g : dm.local(r).root_global) {
        new_part[static_cast<std::size_t>(g)] =
            (g % 4 == 0) ? (r + 1) % p : r;
      }
    }
    const auto ms = pmesh::migrate(dm, eng, new_part, &states);
    dm.validate();
    return std::make_tuple(ms.roots_moved, ms.elements_moved, ms.bytes_sent,
                           ms.bytes_received, dm.active_elements_per_rank(),
                           std::move(states), eng.ledger());
  };

  Engine seq(p);
  ParallelEngine par(p, 4);
  const auto a = migrateit(seq);
  const auto b = migrateit(par);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<3>(a), std::get<3>(b));
  EXPECT_EQ(std::get<4>(a), std::get<4>(b));
  EXPECT_EQ(std::get<6>(a), std::get<6>(b));
  // Solution states bitwise equal.
  const auto& sa = std::get<5>(a);
  const auto& sb = std::get<5>(b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t r = 0; r < sa.size(); ++r) {
    ASSERT_EQ(sa[r].size(), sb[r].size());
    for (std::size_t v = 0; v < sa[r].size(); ++v) {
      for (int c = 0; c < solver::kNumVars; ++c) {
        EXPECT_EQ(sa[r][v][c], sb[r][v][c]);
      }
    }
  }
}

TEST(CrossEngine, DistFrameworkCyclesIdentical) {
  auto run_cycles = [](int threads) {
    core::FrameworkOptions opt;
    opt.nranks = 6;
    opt.refine_fraction = 0.08;
    opt.imbalance_trigger = 1.02;  // make the remap path fire
    opt.solver_steps_per_cycle = 3;
    opt.threads = threads;
    auto mesh = mesh::make_box_mesh(mesh::small_box(6));
    core::DistFramework fw(std::move(mesh), opt);
    solver::BlastSpec blast;
    blast.radius = 0.2;
    for (Rank r = 0; r < opt.nranks; ++r) {
      solver::init_blast(fw.dist_mesh().local(r).mesh, fw.solver().solution(r),
                         blast);
    }
    std::vector<core::DistCycleReport> reps;
    for (int i = 0; i < 2; ++i) reps.push_back(fw.cycle());
    fw.dist_mesh().validate();

    std::vector<std::vector<double>> rho(static_cast<std::size_t>(opt.nranks));
    for (Rank r = 0; r < opt.nranks; ++r) {
      rho[static_cast<std::size_t>(r)] = fw.solver().density_field(r);
    }
    // Metrics: compare the deterministic view — the full to_json() now
    // carries wall-clock histograms (rank_step_seconds, phase_wall_seconds)
    // whose samples differ across engines by construction.
    return std::make_tuple(reps, fw.elements_per_rank(), std::move(rho),
                           fw.engine().ledger(),
                           fw.trace().deterministic_json(),
                           fw.metrics().deterministic_json().dump(),
                           fw.metrics().to_json().dump(),
                           fw.memory().deterministic_json().dump());
  };

  const auto seq = run_cycles(1);
  const auto par = run_cycles(4);

  const auto& rs = std::get<0>(seq);
  const auto& rp = std::get<0>(par);
  ASSERT_EQ(rs.size(), rp.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rp[i].elements_before, rs[i].elements_before);
    EXPECT_EQ(rp[i].elements_after, rs[i].elements_after);
    EXPECT_EQ(rp[i].mark_comm_rounds, rs[i].mark_comm_rounds);
    EXPECT_EQ(rp[i].evaluated_repartition, rs[i].evaluated_repartition);
    EXPECT_EQ(rp[i].accepted, rs[i].accepted);
    EXPECT_EQ(rp[i].imbalance_old, rs[i].imbalance_old);
    EXPECT_EQ(rp[i].imbalance_new, rs[i].imbalance_new);
    EXPECT_EQ(rp[i].gain_seconds, rs[i].gain_seconds);
    EXPECT_EQ(rp[i].cost_seconds, rs[i].cost_seconds);
    EXPECT_EQ(rp[i].elements_migrated, rs[i].elements_migrated);
    EXPECT_EQ(rp[i].refine_work_per_rank, rs[i].refine_work_per_rank);
  }
  EXPECT_EQ(std::get<1>(par), std::get<1>(seq));
  EXPECT_EQ(std::get<2>(par), std::get<2>(seq));  // density bit-identical
  EXPECT_EQ(std::get<3>(par), std::get<3>(seq));  // full ledger
  // plum-trace: the deterministic view (phases + per-rank superstep
  // counters, wall-clock fields excluded) is byte-identical across engines.
  EXPECT_EQ(std::get<4>(par), std::get<4>(seq));
  EXPECT_NE(std::get<4>(seq).find("\"subdivide\""), std::string::npos);
  // The deterministic view now carries the comm matrix, per-tag-class
  // traffic, and the gate-audit log — all byte-identical by the check above.
  EXPECT_NE(std::get<4>(seq).find("\"comm_matrix\""), std::string::npos);
  EXPECT_NE(std::get<4>(seq).find("\"comm_by_class\""), std::string::npos);
  EXPECT_NE(std::get<4>(seq).find("\"gate_audit\""), std::string::npos);
  // plum-path: the counter-sourced critical-path decomposition is part of
  // the deterministic trace bytes compared above.
  EXPECT_NE(std::get<4>(seq).find("\"critical_path\""), std::string::npos);
  // Live paper-metric gauges agree across engines too (deterministic view:
  // gauges + the counter-sourced wait-fraction histogram, wall ones out).
  EXPECT_EQ(std::get<5>(par), std::get<5>(seq));
  EXPECT_NE(std::get<5>(seq).find("\"imbalance\""), std::string::npos);
  EXPECT_NE(std::get<5>(seq).find("\"edge_cut\""), std::string::npos);
  EXPECT_NE(std::get<5>(seq).find("\"rank_wait_fraction\""),
            std::string::npos);
  EXPECT_EQ(std::get<5>(seq).find("\"rank_step_seconds\""),
            std::string::npos);
  // The full metrics document does carry the wall-clock histograms.
  EXPECT_NE(std::get<6>(seq).find("\"rank_step_seconds\""),
            std::string::npos);
  EXPECT_NE(std::get<6>(seq).find("\"phase_wall_seconds\""),
            std::string::npos);
  // plum-mem: the per-rank, per-phase allocation profile is embedded in
  // the deterministic trace compared above AND byte-identical on its own —
  // rank-bound taps under the claiming-worker rule make scratch churn
  // engine-invariant. The deterministic view must exclude the RSS gauge.
  EXPECT_EQ(std::get<7>(par), std::get<7>(seq));
  EXPECT_NE(std::get<4>(seq).find("\"plum-heap/1\""), std::string::npos);
  EXPECT_NE(std::get<7>(seq).find("\"repartition\""), std::string::npos);
  EXPECT_EQ(std::get<7>(seq).find("\"rss\""), std::string::npos);
  // Intermediate pool size: same bytes again.
  const auto par2 = run_cycles(2);
  EXPECT_EQ(std::get<4>(par2), std::get<4>(seq));
  EXPECT_EQ(std::get<5>(par2), std::get<5>(seq));
  EXPECT_EQ(std::get<7>(par2), std::get<7>(seq));
  // Sanity: the workload actually exercised the remap machinery.
  EXPECT_TRUE(rs[0].evaluated_repartition || rs[1].evaluated_repartition);
}

TEST(ParallelEngine, PoolSizeEdgeCases) {
  // One worker, and more workers than ranks: both reduce to the same
  // deterministic schedule.
  const Rank p = 3;
  Engine seq(p);
  const auto want = run_storm(seq, 4);

  ParallelEngine one(p, 1);
  EXPECT_EQ(run_storm(one, 4), want);
  EXPECT_EQ(one.num_threads(), 1);

  ParallelEngine many(p, 64);
  EXPECT_EQ(run_storm(many, 4), want);
  EXPECT_LE(many.num_threads(), 3);  // clamped to nranks

  ParallelEngine defaulted(p);  // hardware_concurrency, clamped
  EXPECT_GE(defaulted.num_threads(), 1);
  EXPECT_EQ(run_storm(defaulted, 4), want);
}

TEST(ParallelEngine, ReusableAcrossManyRuns) {
  // The pool must survive many run() calls (DistFramework reuses one
  // engine for every phase of every cycle).
  const Rank p = 4;
  ParallelEngine eng(p, 2);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::int64_t> got(static_cast<std::size_t>(p), 0);
    eng.run([&](Rank r, const Inbox& in, Outbox& out) {
      if (out.step() == 0) {
        out.send_vec<std::int64_t>((r + i) % p, 0, {r + 1000LL * i});
        return true;
      }
      for (const auto& m : in.messages()) {
        got[static_cast<std::size_t>(r)] += rt::unpack<std::int64_t>(m)[0];
      }
      return false;
    });
    std::int64_t sum = std::accumulate(got.begin(), got.end(), std::int64_t{0});
    std::int64_t want = 0;
    for (Rank r = 0; r < p; ++r) want += r + 1000LL * i;
    EXPECT_EQ(sum, want);
  }
  EXPECT_EQ(eng.ledger().num_supersteps(), 100);
}

}  // namespace
}  // namespace plum
