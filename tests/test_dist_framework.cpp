// End-to-end tests for the fully distributed framework: the complete Fig. 1
// loop over the BSP substrate, including migration with solution transfer
// and balanced parallel subdivision.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include <sys/wait.h>

#include "core/dist_framework.hpp"
#include "mesh/box_mesh.hpp"
#include "obs/gate_audit.hpp"
#include "obs/scope.hpp"
#include "runtime/engine.hpp"
#include "runtime/proc_group.hpp"
#include "runtime/transport.hpp"
#include "solver/init_conditions.hpp"
#include "util/stats.hpp"

namespace plum::core {
namespace {

DistFramework make_dist(FrameworkOptions opt, int boxn) {
  auto mesh = mesh::make_box_mesh(mesh::small_box(boxn));
  DistFramework fw(std::move(mesh), opt);
  solver::BlastSpec blast;
  blast.radius = 0.2;
  for (Rank r = 0; r < opt.nranks; ++r) {
    solver::init_blast(fw.dist_mesh().local(r).mesh, fw.solver().solution(r),
                       blast);
  }
  return fw;
}

// Cross-transport determinism at the framework level: routing every
// payload through child depot processes (pipe transport) must leave the
// whole adaption cycle bit-identical — element counts, solution fields,
// ledger, deterministic trace and metrics views.
TEST(DistFramework, PipeTransportCyclesIdenticalToInProc) {
  auto run_cycles = [](rt::TransportKind transport) {
    FrameworkOptions opt;
    opt.nranks = 8;
    opt.refine_fraction = 0.08;
    opt.imbalance_trigger = 1.02;  // make the remap path fire
    opt.solver_steps_per_cycle = 3;
    opt.transport = transport;
    opt.transport_procs = 3;
    auto fw = make_dist(opt, 5);
    std::vector<DistCycleReport> reps;
    for (int i = 0; i < 2; ++i) reps.push_back(fw.cycle());
    fw.dist_mesh().validate();
    std::vector<std::vector<double>> rho(static_cast<std::size_t>(opt.nranks));
    for (Rank r = 0; r < opt.nranks; ++r) {
      rho[static_cast<std::size_t>(r)] = fw.solver().density_field(r);
    }
    return std::make_tuple(std::move(reps), fw.elements_per_rank(),
                           std::move(rho), fw.engine().ledger(),
                           fw.trace().deterministic_json(),
                           fw.metrics().deterministic_json().dump(),
                           fw.memory().deterministic_json().dump());
  };

  const auto inproc = run_cycles(rt::TransportKind::kInProc);
  const auto pipe = run_cycles(rt::TransportKind::kPipe);

  const auto& ri = std::get<0>(inproc);
  const auto& rp = std::get<0>(pipe);
  ASSERT_EQ(ri.size(), rp.size());
  for (std::size_t i = 0; i < ri.size(); ++i) {
    EXPECT_EQ(rp[i].elements_before, ri[i].elements_before);
    EXPECT_EQ(rp[i].elements_after, ri[i].elements_after);
    EXPECT_EQ(rp[i].accepted, ri[i].accepted);
    EXPECT_EQ(rp[i].elements_migrated, ri[i].elements_migrated);
    EXPECT_EQ(rp[i].volume.total_elems, ri[i].volume.total_elems);
  }
  EXPECT_EQ(std::get<1>(pipe), std::get<1>(inproc));  // elements per rank
  EXPECT_EQ(std::get<2>(pipe), std::get<2>(inproc));  // density fields
  EXPECT_EQ(std::get<3>(pipe), std::get<3>(inproc));  // full ledger
  EXPECT_EQ(std::get<4>(pipe), std::get<4>(inproc));  // deterministic trace
  EXPECT_EQ(std::get<5>(pipe), std::get<5>(inproc));  // deterministic metrics
  // plum-mem: rank lambdas always run in the coordinator (depot children
  // only buffer), so the per-phase allocation profile is transport-
  // invariant — and embedded in the trace bytes compared above.
  EXPECT_EQ(std::get<6>(pipe), std::get<6>(inproc));
  EXPECT_NE(std::get<4>(inproc).find("\"plum-heap/1\""), std::string::npos);
}

TEST(DistFramework, CycleRefinesAndStaysConsistent) {
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.06;
  opt.solver_steps_per_cycle = 5;
  auto fw = make_dist(opt, 4);
  const auto rep = fw.cycle();
  EXPECT_GT(rep.elements_after, rep.elements_before);
  fw.dist_mesh().validate();
  fw.solver().validate_replication();
}

TEST(DistFramework, AcceptedRemapBalancesSubdivisionWork) {
  FrameworkOptions opt;
  opt.nranks = 8;
  opt.refine_fraction = 0.05;
  opt.imbalance_trigger = 1.10;
  opt.solver_steps_per_cycle = 10;
  auto fw = make_dist(opt, 5);
  const auto rep = fw.cycle();
  if (rep.accepted) {
    EXPECT_GT(rep.elements_migrated, 0);
    EXPECT_LT(rep.imbalance_new, rep.imbalance_old);
    // Achieved element balance after the balanced refinement.
    const auto loads = fw.elements_per_rank();
    EXPECT_LT(imbalance(loads), rep.imbalance_old);
  }
  fw.dist_mesh().validate();
}

TEST(DistFramework, TwoCyclesWithMigrationKeepSolutionPhysical) {
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.05;
  opt.imbalance_trigger = 1.05;
  opt.solver_steps_per_cycle = 5;
  auto fw = make_dist(opt, 4);
  int accepted = 0;
  for (int i = 0; i < 2; ++i) {
    const auto rep = fw.cycle();
    accepted += rep.accepted;
    fw.dist_mesh().validate();
    fw.solver().validate_replication();
    for (Rank r = 0; r < opt.nranks; ++r) {
      for (const auto& s : fw.solver().solution(r)) {
        ASSERT_GT(s[0], 0.0) << "density lost through cycle " << i;
      }
    }
  }
  // With the aggressive trigger the blast case must remap at least once.
  EXPECT_GE(accepted, 1);
}

// plum-meter acceptance: a >= 4-rank run produces a P x P comm matrix that
// reconciles with the ledger, per-cycle paper-metric gauges, and a gate
// audit whose accepted records carry modeled cost and measured bytes.
TEST(DistFramework, ObservabilityCommMatrixGaugesAndGateAudit) {
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.05;
  opt.imbalance_trigger = 1.05;
  opt.solver_steps_per_cycle = 5;
  auto fw = make_dist(opt, 4);
  const int cycles = 2;
  int accepted = 0;
  for (int i = 0; i < cycles; ++i) accepted += fw.cycle().accepted;
  ASSERT_GE(accepted, 1);  // same workload as TwoCyclesWithMigration...

  // --- comm matrix reconciles with the ledger ------------------------------
  const rt::Ledger& ledger = fw.engine().ledger();
  const rt::CommMatrix cm = ledger.comm_matrix();
  ASSERT_EQ(cm.nranks, opt.nranks);
  std::vector<std::int64_t> sent(static_cast<std::size_t>(opt.nranks), 0);
  for (const auto& step : ledger.steps) {
    for (Rank r = 0; r < opt.nranks; ++r) {
      sent[static_cast<std::size_t>(r)] +=
          step[static_cast<std::size_t>(r)].bytes_sent;
    }
  }
  std::int64_t row_total = 0;
  std::int64_t col_total = 0;
  for (Rank r = 0; r < opt.nranks; ++r) {
    EXPECT_EQ(cm.row_bytes(r), sent[static_cast<std::size_t>(r)]);
    row_total += cm.row_bytes(r);
    col_total += cm.col_bytes(r);
  }
  EXPECT_EQ(row_total, ledger.total_bytes());
  EXPECT_EQ(col_total, ledger.total_bytes());
  EXPECT_GT(ledger.total_bytes(), 0);
  // The trace-side matrix is the same accumulation.
  EXPECT_EQ(fw.trace().comm_matrix(), cm);
  EXPECT_FALSE(fw.trace().comm_by_class().empty());

  // --- per-cycle gauges ----------------------------------------------------
  const obs::MetricsRegistry& m = fw.metrics();
  for (const char* gauge : {"imbalance", "edge_cut", "remap_total_elems",
                            "remap_max_sent_or_recv"}) {
    ASSERT_TRUE(m.contains(gauge)) << gauge;
    ASSERT_TRUE(m.is_series(gauge)) << gauge;
    EXPECT_EQ(m.series(gauge).size(), static_cast<std::size_t>(cycles))
        << gauge;
  }
  for (const double v : m.series("imbalance")) EXPECT_GE(v, 1.0);

  // --- gate audit ----------------------------------------------------------
  const auto& gates = fw.trace().gate_records();
  ASSERT_EQ(gates.size(), static_cast<std::size_t>(cycles));
  int audited_accepts = 0;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const obs::GateRecord& g = gates[i];
    EXPECT_EQ(g.cycle, static_cast<int>(i));
    if (!g.accepted) continue;
    ++audited_accepts;
    EXPECT_TRUE(g.evaluated);
    EXPECT_TRUE(g.metric == "TotalV" || g.metric == "MaxV") << g.metric;
    EXPECT_GT(g.gain_s, g.cost_s);  // the gate's own acceptance condition
    EXPECT_GT(g.predicted_move_bytes, 0);
    EXPECT_GT(g.measured_move_bytes, 0);
    EXPECT_EQ(g.drift,
              obs::gate_drift(g.predicted_move_bytes, g.measured_move_bytes));
  }
  EXPECT_EQ(audited_accepts, accepted);
}

// plum-scope: the always-on flight recorder fills one ring per rank, the
// scope stream appends exactly one validating plum-scope/1 NDJSON record
// per cycle, and the recorder's deterministic view is transport-invariant.
TEST(DistFramework, ScopeStreamWritesOneValidatedRecordPerCycle) {
  const std::string stream =
      ::testing::TempDir() + "dist_scope_stream.ndjson";
  std::remove(stream.c_str());

  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.05;
  opt.imbalance_trigger = 1.05;
  opt.solver_steps_per_cycle = 5;
  opt.scope_name = "stream_unit";
  opt.scope_stream = stream;
  const int cycles = 3;
  std::string scope_det;
  {
    auto fw = make_dist(opt, 4);
    for (int i = 0; i < cycles; ++i) fw.cycle();
    // The engine fed the ring: every rank recorded every superstep.
    const auto steps =
        static_cast<std::uint64_t>(fw.trace().supersteps().size());
    ASSERT_GT(steps, 0u);
    for (Rank r = 0; r < opt.nranks; ++r) {
      EXPECT_EQ(fw.scope().events_recorded(r), steps) << "rank " << r;
    }
    EXPECT_FALSE(fw.scope().phase_names().empty());
    scope_det = fw.scope().deterministic_json().dump();
  }

  std::ifstream in(stream);
  ASSERT_TRUE(in.good());
  std::string line;
  int n = 0;
  std::int64_t busy_total = 0;
  while (std::getline(in, line)) {
    obs::Json rec;
    std::string err;
    ASSERT_TRUE(obs::Json::parse(line, &rec, &err)) << err;
    ASSERT_EQ(obs::validate_scope_record(rec), "") << line;
    EXPECT_EQ(rec.find("name")->as_string(), "stream_unit");
    EXPECT_EQ(rec.find("cycle")->as_int(), n);
    const obs::Json* ranks = rec.find("ranks");
    ASSERT_EQ(ranks->size(), static_cast<std::size_t>(opt.nranks));
    for (std::size_t r = 0; r < ranks->size(); ++r) {
      busy_total += ranks->at(r).find("busy")->as_int();
    }
    EXPECT_EQ(rec.find("depot"), nullptr);  // in-proc: no depot children
    ++n;
  }
  EXPECT_EQ(n, cycles);
  EXPECT_GT(busy_total, 0);
  std::remove(stream.c_str());

  // Same workload over the pipe transport: identical deterministic rings.
  FrameworkOptions popt = opt;
  popt.scope_stream.clear();
  popt.transport = rt::TransportKind::kPipe;
  popt.transport_procs = 2;
  auto pfw = make_dist(popt, 4);
  for (int i = 0; i < cycles; ++i) pfw.cycle();
  EXPECT_EQ(pfw.scope().deterministic_json().dump(), scope_det);
}

// Killing a depot child mid-run must leave a validating plum-postmortem/1
// document behind: the assert's rank-death reason, >= 1 ring event for
// every surviving rank, and the dead child's captured stderr.
TEST(DistFrameworkDeathTest, RankDeathWritesValidatingPostmortem) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dir = ::testing::TempDir();
  const std::string pm_path = dir + "POSTMORTEM_death_unit.json";
  std::remove(pm_path.c_str());
  ASSERT_EQ(setenv("PLUM_BENCH_JSON_DIR", dir.c_str(), 1), 0);

  EXPECT_DEATH(
      {
        FrameworkOptions opt;
        opt.nranks = 4;
        opt.refine_fraction = 0.05;
        opt.imbalance_trigger = 1.05;
        opt.solver_steps_per_cycle = 3;
        opt.transport = rt::TransportKind::kPipe;
        opt.transport_procs = 2;
        opt.scope_name = "death_unit";
        auto fw = make_dist(opt, 4);
        fw.cycle();  // populate the rings before the crash
        auto& pipe = dynamic_cast<rt::PipeTransport&>(fw.engine().transport());
        ::kill(pipe.procs().pid(0), SIGKILL);
        int status = 0;
        ::waitpid(pipe.procs().pid(0), &status, 0);
        fw.cycle();
      },
      "rank group child died");
  ASSERT_EQ(unsetenv("PLUM_BENCH_JSON_DIR"), 0);

  std::ifstream in(pm_path);
  ASSERT_TRUE(in.good()) << "death run left no " << pm_path;
  std::ostringstream buf;
  buf << in.rdbuf();
  obs::Json doc;
  std::string err;
  ASSERT_TRUE(obs::Json::parse(buf.str(), &doc, &err)) << err;
  ASSERT_EQ(obs::validate_postmortem(doc), "");
  EXPECT_EQ(doc.find("name")->as_string(), "death_unit");
  EXPECT_NE(doc.find("reason")->find("msg")->as_string().find(
                "rank group child died"),
            std::string::npos);
  // Every rank kept flight-recorder evidence of the run that crashed.
  const obs::Json* scope = doc.find("scope");
  ASSERT_NE(scope, nullptr);
  const obs::Json* ranks = scope->find("ranks");
  ASSERT_EQ(ranks->size(), 4u);
  for (std::size_t r = 0; r < ranks->size(); ++r) {
    EXPECT_GE(ranks->at(r).find("events")->size(), 1u) << "rank " << r;
  }
  // The dead child's captured stderr made it into the document.
  EXPECT_NE(doc.find("child_stderr")->as_string().find("plum-depot group=0"),
            std::string::npos);
  const obs::Json* depot = doc.find("depot");
  ASSERT_NE(depot, nullptr);
  EXPECT_EQ(depot->size(), 2u);
  std::remove(pm_path.c_str());
}

TEST(DistFramework, MatchesSerialFrameworkElementCounts) {
  // The distributed and single-address-space drivers implement the same
  // marking policy; with the same threshold semantics the global mesh
  // growth is close (not identical: Framework uses an exact top-fraction
  // count, DistFramework a threshold quantile).
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.06;
  opt.imbalance_trigger = 1e9;  // disable remap in both
  opt.solver_steps_per_cycle = 5;

  auto dist = make_dist(opt, 4);
  const auto rd = dist.cycle();

  auto mesh = mesh::make_box_mesh(mesh::small_box(4));
  Framework serial(std::move(mesh), opt);
  solver::BlastSpec blast;
  blast.radius = 0.2;
  solver::init_blast(serial.mesh(), serial.solver().solution(), blast);
  const auto rs = serial.cycle();

  EXPECT_NEAR(static_cast<double>(rd.elements_after),
              static_cast<double>(rs.elements_after),
              0.15 * static_cast<double>(rs.elements_after));
}

TEST(DistFramework, CoarseningPhaseRuns) {
  FrameworkOptions opt;
  opt.nranks = 3;
  opt.refine_fraction = 0.06;
  opt.coarsen_fraction = 0.4;
  opt.solver_steps_per_cycle = 4;
  auto fw = make_dist(opt, 3);
  fw.cycle();  // grow
  const auto rep = fw.cycle();  // coarsen quiet regions + refine front
  fw.dist_mesh().validate();
  fw.solver().validate_replication();
  EXPECT_GT(rep.elements_after, 0);
  for (Rank r = 0; r < opt.nranks; ++r) {
    for (const auto& s : fw.solver().solution(r)) EXPECT_GT(s[0], 0.0);
  }
}

}  // namespace
}  // namespace plum::core
