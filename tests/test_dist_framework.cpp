// End-to-end tests for the fully distributed framework: the complete Fig. 1
// loop over the BSP substrate, including migration with solution transfer
// and balanced parallel subdivision.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/dist_framework.hpp"
#include "mesh/box_mesh.hpp"
#include "obs/gate_audit.hpp"
#include "runtime/engine.hpp"
#include "solver/init_conditions.hpp"
#include "util/stats.hpp"

namespace plum::core {
namespace {

DistFramework make_dist(FrameworkOptions opt, int boxn) {
  auto mesh = mesh::make_box_mesh(mesh::small_box(boxn));
  DistFramework fw(std::move(mesh), opt);
  solver::BlastSpec blast;
  blast.radius = 0.2;
  for (Rank r = 0; r < opt.nranks; ++r) {
    solver::init_blast(fw.dist_mesh().local(r).mesh, fw.solver().solution(r),
                       blast);
  }
  return fw;
}

// Cross-transport determinism at the framework level: routing every
// payload through child depot processes (pipe transport) must leave the
// whole adaption cycle bit-identical — element counts, solution fields,
// ledger, deterministic trace and metrics views.
TEST(DistFramework, PipeTransportCyclesIdenticalToInProc) {
  auto run_cycles = [](rt::TransportKind transport) {
    FrameworkOptions opt;
    opt.nranks = 8;
    opt.refine_fraction = 0.08;
    opt.imbalance_trigger = 1.02;  // make the remap path fire
    opt.solver_steps_per_cycle = 3;
    opt.transport = transport;
    opt.transport_procs = 3;
    auto fw = make_dist(opt, 5);
    std::vector<DistCycleReport> reps;
    for (int i = 0; i < 2; ++i) reps.push_back(fw.cycle());
    fw.dist_mesh().validate();
    std::vector<std::vector<double>> rho(static_cast<std::size_t>(opt.nranks));
    for (Rank r = 0; r < opt.nranks; ++r) {
      rho[static_cast<std::size_t>(r)] = fw.solver().density_field(r);
    }
    return std::make_tuple(std::move(reps), fw.elements_per_rank(),
                           std::move(rho), fw.engine().ledger(),
                           fw.trace().deterministic_json(),
                           fw.metrics().deterministic_json().dump());
  };

  const auto inproc = run_cycles(rt::TransportKind::kInProc);
  const auto pipe = run_cycles(rt::TransportKind::kPipe);

  const auto& ri = std::get<0>(inproc);
  const auto& rp = std::get<0>(pipe);
  ASSERT_EQ(ri.size(), rp.size());
  for (std::size_t i = 0; i < ri.size(); ++i) {
    EXPECT_EQ(rp[i].elements_before, ri[i].elements_before);
    EXPECT_EQ(rp[i].elements_after, ri[i].elements_after);
    EXPECT_EQ(rp[i].accepted, ri[i].accepted);
    EXPECT_EQ(rp[i].elements_migrated, ri[i].elements_migrated);
    EXPECT_EQ(rp[i].volume.total_elems, ri[i].volume.total_elems);
  }
  EXPECT_EQ(std::get<1>(pipe), std::get<1>(inproc));  // elements per rank
  EXPECT_EQ(std::get<2>(pipe), std::get<2>(inproc));  // density fields
  EXPECT_EQ(std::get<3>(pipe), std::get<3>(inproc));  // full ledger
  EXPECT_EQ(std::get<4>(pipe), std::get<4>(inproc));  // deterministic trace
  EXPECT_EQ(std::get<5>(pipe), std::get<5>(inproc));  // deterministic metrics
}

TEST(DistFramework, CycleRefinesAndStaysConsistent) {
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.06;
  opt.solver_steps_per_cycle = 5;
  auto fw = make_dist(opt, 4);
  const auto rep = fw.cycle();
  EXPECT_GT(rep.elements_after, rep.elements_before);
  fw.dist_mesh().validate();
  fw.solver().validate_replication();
}

TEST(DistFramework, AcceptedRemapBalancesSubdivisionWork) {
  FrameworkOptions opt;
  opt.nranks = 8;
  opt.refine_fraction = 0.05;
  opt.imbalance_trigger = 1.10;
  opt.solver_steps_per_cycle = 10;
  auto fw = make_dist(opt, 5);
  const auto rep = fw.cycle();
  if (rep.accepted) {
    EXPECT_GT(rep.elements_migrated, 0);
    EXPECT_LT(rep.imbalance_new, rep.imbalance_old);
    // Achieved element balance after the balanced refinement.
    const auto loads = fw.elements_per_rank();
    EXPECT_LT(imbalance(loads), rep.imbalance_old);
  }
  fw.dist_mesh().validate();
}

TEST(DistFramework, TwoCyclesWithMigrationKeepSolutionPhysical) {
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.05;
  opt.imbalance_trigger = 1.05;
  opt.solver_steps_per_cycle = 5;
  auto fw = make_dist(opt, 4);
  int accepted = 0;
  for (int i = 0; i < 2; ++i) {
    const auto rep = fw.cycle();
    accepted += rep.accepted;
    fw.dist_mesh().validate();
    fw.solver().validate_replication();
    for (Rank r = 0; r < opt.nranks; ++r) {
      for (const auto& s : fw.solver().solution(r)) {
        ASSERT_GT(s[0], 0.0) << "density lost through cycle " << i;
      }
    }
  }
  // With the aggressive trigger the blast case must remap at least once.
  EXPECT_GE(accepted, 1);
}

// plum-meter acceptance: a >= 4-rank run produces a P x P comm matrix that
// reconciles with the ledger, per-cycle paper-metric gauges, and a gate
// audit whose accepted records carry modeled cost and measured bytes.
TEST(DistFramework, ObservabilityCommMatrixGaugesAndGateAudit) {
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.05;
  opt.imbalance_trigger = 1.05;
  opt.solver_steps_per_cycle = 5;
  auto fw = make_dist(opt, 4);
  const int cycles = 2;
  int accepted = 0;
  for (int i = 0; i < cycles; ++i) accepted += fw.cycle().accepted;
  ASSERT_GE(accepted, 1);  // same workload as TwoCyclesWithMigration...

  // --- comm matrix reconciles with the ledger ------------------------------
  const rt::Ledger& ledger = fw.engine().ledger();
  const rt::CommMatrix cm = ledger.comm_matrix();
  ASSERT_EQ(cm.nranks, opt.nranks);
  std::vector<std::int64_t> sent(static_cast<std::size_t>(opt.nranks), 0);
  for (const auto& step : ledger.steps) {
    for (Rank r = 0; r < opt.nranks; ++r) {
      sent[static_cast<std::size_t>(r)] +=
          step[static_cast<std::size_t>(r)].bytes_sent;
    }
  }
  std::int64_t row_total = 0;
  std::int64_t col_total = 0;
  for (Rank r = 0; r < opt.nranks; ++r) {
    EXPECT_EQ(cm.row_bytes(r), sent[static_cast<std::size_t>(r)]);
    row_total += cm.row_bytes(r);
    col_total += cm.col_bytes(r);
  }
  EXPECT_EQ(row_total, ledger.total_bytes());
  EXPECT_EQ(col_total, ledger.total_bytes());
  EXPECT_GT(ledger.total_bytes(), 0);
  // The trace-side matrix is the same accumulation.
  EXPECT_EQ(fw.trace().comm_matrix(), cm);
  EXPECT_FALSE(fw.trace().comm_by_class().empty());

  // --- per-cycle gauges ----------------------------------------------------
  const obs::MetricsRegistry& m = fw.metrics();
  for (const char* gauge : {"imbalance", "edge_cut", "remap_total_elems",
                            "remap_max_sent_or_recv"}) {
    ASSERT_TRUE(m.contains(gauge)) << gauge;
    ASSERT_TRUE(m.is_series(gauge)) << gauge;
    EXPECT_EQ(m.series(gauge).size(), static_cast<std::size_t>(cycles))
        << gauge;
  }
  for (const double v : m.series("imbalance")) EXPECT_GE(v, 1.0);

  // --- gate audit ----------------------------------------------------------
  const auto& gates = fw.trace().gate_records();
  ASSERT_EQ(gates.size(), static_cast<std::size_t>(cycles));
  int audited_accepts = 0;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const obs::GateRecord& g = gates[i];
    EXPECT_EQ(g.cycle, static_cast<int>(i));
    if (!g.accepted) continue;
    ++audited_accepts;
    EXPECT_TRUE(g.evaluated);
    EXPECT_TRUE(g.metric == "TotalV" || g.metric == "MaxV") << g.metric;
    EXPECT_GT(g.gain_s, g.cost_s);  // the gate's own acceptance condition
    EXPECT_GT(g.predicted_move_bytes, 0);
    EXPECT_GT(g.measured_move_bytes, 0);
    EXPECT_EQ(g.drift,
              obs::gate_drift(g.predicted_move_bytes, g.measured_move_bytes));
  }
  EXPECT_EQ(audited_accepts, accepted);
}

TEST(DistFramework, MatchesSerialFrameworkElementCounts) {
  // The distributed and single-address-space drivers implement the same
  // marking policy; with the same threshold semantics the global mesh
  // growth is close (not identical: Framework uses an exact top-fraction
  // count, DistFramework a threshold quantile).
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.06;
  opt.imbalance_trigger = 1e9;  // disable remap in both
  opt.solver_steps_per_cycle = 5;

  auto dist = make_dist(opt, 4);
  const auto rd = dist.cycle();

  auto mesh = mesh::make_box_mesh(mesh::small_box(4));
  Framework serial(std::move(mesh), opt);
  solver::BlastSpec blast;
  blast.radius = 0.2;
  solver::init_blast(serial.mesh(), serial.solver().solution(), blast);
  const auto rs = serial.cycle();

  EXPECT_NEAR(static_cast<double>(rd.elements_after),
              static_cast<double>(rs.elements_after),
              0.15 * static_cast<double>(rs.elements_after));
}

TEST(DistFramework, CoarseningPhaseRuns) {
  FrameworkOptions opt;
  opt.nranks = 3;
  opt.refine_fraction = 0.06;
  opt.coarsen_fraction = 0.4;
  opt.solver_steps_per_cycle = 4;
  auto fw = make_dist(opt, 3);
  fw.cycle();  // grow
  const auto rep = fw.cycle();  // coarsen quiet regions + refine front
  fw.dist_mesh().validate();
  fw.solver().validate_replication();
  EXPECT_GT(rep.elements_after, 0);
  for (Rank r = 0; r < opt.nranks; ++r) {
    for (const auto& s : fw.solver().solution(r)) EXPECT_GT(s[0], 0.0);
  }
}

}  // namespace
}  // namespace plum::core
