// End-to-end tests for the fully distributed framework: the complete Fig. 1
// loop over the BSP substrate, including migration with solution transfer
// and balanced parallel subdivision.

#include <gtest/gtest.h>

#include "core/dist_framework.hpp"
#include "mesh/box_mesh.hpp"
#include "solver/init_conditions.hpp"
#include "util/stats.hpp"

namespace plum::core {
namespace {

DistFramework make_dist(FrameworkOptions opt, int boxn) {
  auto mesh = mesh::make_box_mesh(mesh::small_box(boxn));
  DistFramework fw(std::move(mesh), opt);
  solver::BlastSpec blast;
  blast.radius = 0.2;
  for (Rank r = 0; r < opt.nranks; ++r) {
    solver::init_blast(fw.dist_mesh().local(r).mesh, fw.solver().solution(r),
                       blast);
  }
  return fw;
}

TEST(DistFramework, CycleRefinesAndStaysConsistent) {
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.06;
  opt.solver_steps_per_cycle = 5;
  auto fw = make_dist(opt, 4);
  const auto rep = fw.cycle();
  EXPECT_GT(rep.elements_after, rep.elements_before);
  fw.dist_mesh().validate();
  fw.solver().validate_replication();
}

TEST(DistFramework, AcceptedRemapBalancesSubdivisionWork) {
  FrameworkOptions opt;
  opt.nranks = 8;
  opt.refine_fraction = 0.05;
  opt.imbalance_trigger = 1.10;
  opt.solver_steps_per_cycle = 10;
  auto fw = make_dist(opt, 5);
  const auto rep = fw.cycle();
  if (rep.accepted) {
    EXPECT_GT(rep.elements_migrated, 0);
    EXPECT_LT(rep.imbalance_new, rep.imbalance_old);
    // Achieved element balance after the balanced refinement.
    const auto loads = fw.elements_per_rank();
    EXPECT_LT(imbalance(loads), rep.imbalance_old);
  }
  fw.dist_mesh().validate();
}

TEST(DistFramework, TwoCyclesWithMigrationKeepSolutionPhysical) {
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.05;
  opt.imbalance_trigger = 1.05;
  opt.solver_steps_per_cycle = 5;
  auto fw = make_dist(opt, 4);
  int accepted = 0;
  for (int i = 0; i < 2; ++i) {
    const auto rep = fw.cycle();
    accepted += rep.accepted;
    fw.dist_mesh().validate();
    fw.solver().validate_replication();
    for (Rank r = 0; r < opt.nranks; ++r) {
      for (const auto& s : fw.solver().solution(r)) {
        ASSERT_GT(s[0], 0.0) << "density lost through cycle " << i;
      }
    }
  }
  // With the aggressive trigger the blast case must remap at least once.
  EXPECT_GE(accepted, 1);
}

TEST(DistFramework, MatchesSerialFrameworkElementCounts) {
  // The distributed and single-address-space drivers implement the same
  // marking policy; with the same threshold semantics the global mesh
  // growth is close (not identical: Framework uses an exact top-fraction
  // count, DistFramework a threshold quantile).
  FrameworkOptions opt;
  opt.nranks = 4;
  opt.refine_fraction = 0.06;
  opt.imbalance_trigger = 1e9;  // disable remap in both
  opt.solver_steps_per_cycle = 5;

  auto dist = make_dist(opt, 4);
  const auto rd = dist.cycle();

  auto mesh = mesh::make_box_mesh(mesh::small_box(4));
  Framework serial(std::move(mesh), opt);
  solver::BlastSpec blast;
  blast.radius = 0.2;
  solver::init_blast(serial.mesh(), serial.solver().solution(), blast);
  const auto rs = serial.cycle();

  EXPECT_NEAR(static_cast<double>(rd.elements_after),
              static_cast<double>(rs.elements_after),
              0.15 * static_cast<double>(rs.elements_after));
}

TEST(DistFramework, CoarseningPhaseRuns) {
  FrameworkOptions opt;
  opt.nranks = 3;
  opt.refine_fraction = 0.06;
  opt.coarsen_fraction = 0.4;
  opt.solver_steps_per_cycle = 4;
  auto fw = make_dist(opt, 3);
  fw.cycle();  // grow
  const auto rep = fw.cycle();  // coarsen quiet regions + refine front
  fw.dist_mesh().validate();
  fw.solver().validate_replication();
  EXPECT_GT(rep.elements_after, 0);
  for (Rank r = 0; r < opt.nranks; ++r) {
    for (const auto& s : fw.solver().solution(r)) EXPECT_GT(s[0], 0.0);
  }
}

}  // namespace
}  // namespace plum::core
