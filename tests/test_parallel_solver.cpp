// Tests for the distributed Euler solver: metric globalization, agreement
// with the serial solver on the same mesh, state replication across shared
// copies, conservation, and behavior on adapted distributions.

#include <gtest/gtest.h>

#include <cmath>

#include "adapt/adaptor.hpp"
#include "mesh/box_mesh.hpp"
#include "partition/multilevel.hpp"
#include "pmesh/parallel_solver.hpp"
#include "solver/init_conditions.hpp"

namespace plum::pmesh {
namespace {

using mesh::TetMesh;

partition::PartVec partition_roots(const TetMesh& global, Rank nranks) {
  partition::MultilevelOptions opt;
  opt.nparts = nranks;
  auto dual = global.build_initial_dual();
  return partition::partition(dual, opt).part;
}

/// Seeds the same blast on the serial solver and on every rank's region.
void init_both(TetMesh& global, solver::EulerSolver& serial,
               ParallelEulerSolver& par, const DistMesh& dm) {
  solver::BlastSpec blast;
  blast.radius = 0.3;
  solver::init_blast(global, serial.solution(), blast);
  for (Rank r = 0; r < dm.nranks(); ++r) {
    solver::init_blast(dm.local(r).mesh, par.solution(r), blast);
  }
}

class ParallelSolverSweep : public ::testing::TestWithParam<Rank> {};

TEST_P(ParallelSolverSweep, MatchesSerialSolver) {
  const Rank P = GetParam();
  auto global = mesh::make_box_mesh(mesh::small_box(3));
  const auto part = partition_roots(global, P);
  DistMesh dm(global, part, P);
  rt::Engine eng(P);

  solver::EulerSolver serial(&global);
  ParallelEulerSolver par(&dm, &eng);
  init_both(global, serial, par, dm);

  for (int s = 0; s < 8; ++s) {
    const auto st_serial = serial.step();
    const auto st_par = par.step();
    ASSERT_NEAR(st_par.dt, st_serial.dt, 1e-14 * st_serial.dt);
  }
  par.validate_replication();

  // Per-vertex agreement through the construction-time global map.
  double max_diff = 0;
  for (Rank r = 0; r < P; ++r) {
    const auto& lm = dm.local(r);
    for (Index v = 0; v < static_cast<Index>(lm.vert_global.size()); ++v) {
      const auto& a = par.solution(r)[static_cast<std::size_t>(v)];
      const auto& b =
          serial.solution()[static_cast<std::size_t>(lm.vert_global[v])];
      for (int c = 0; c < solver::kNumVars; ++c) {
        max_diff = std::max(max_diff, std::abs(a[c] - b[c]));
      }
    }
  }
  EXPECT_LT(max_diff, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ParallelSolverSweep,
                         ::testing::Values<Rank>(2, 3, 5, 8));

TEST(ParallelSolver, ConservesMassAndEnergy) {
  const Rank P = 4;
  auto global = mesh::make_box_mesh(mesh::small_box(3));
  const auto part = partition_roots(global, P);
  DistMesh dm(global, part, P);
  rt::Engine eng(P);
  ParallelEulerSolver par(&dm, &eng);
  for (Rank r = 0; r < P; ++r) {
    solver::BlastSpec blast;
    blast.radius = 0.3;
    solver::init_blast(dm.local(r).mesh, par.solution(r), blast);
  }
  const auto t0 = par.totals();
  par.run(10);
  const auto t1 = par.totals();
  EXPECT_NEAR(t1[0], t0[0], 1e-10 * std::abs(t0[0]));
  EXPECT_NEAR(t1[4], t0[4], 1e-10 * std::abs(t0[4]));
}

TEST(ParallelSolver, TotalsCountSharedVerticesOnce) {
  const Rank P = 3;
  auto global = mesh::make_box_mesh(mesh::small_box(2));
  const auto part = partition_roots(global, P);
  DistMesh dm(global, part, P);
  rt::Engine eng(P);
  ParallelEulerSolver par(&dm, &eng);

  solver::EulerSolver serial(&global);
  // Uniform state: totals must equal volume-weighted constants exactly.
  const auto ts = serial.totals();
  const auto tp = par.totals();
  for (int c = 0; c < solver::kNumVars; ++c) {
    EXPECT_NEAR(tp[c], ts[c], 1e-12 * (std::abs(ts[c]) + 1));
  }
}

TEST(ParallelSolver, RunsOnAdaptedDistribution) {
  const Rank P = 4;
  auto global = mesh::make_box_mesh(mesh::small_box(2));
  adapt::MeshAdaptor ad(&global);
  std::vector<char> marks(static_cast<std::size_t>(global.num_edges()), 0);
  for (Index e = 0; e < global.num_edges(); e += 3) marks[e] = 1;
  ad.mark(marks);
  ad.refine();

  const auto part = partition_roots(global, P);
  DistMesh dm(global, part, P);
  rt::Engine eng(P);

  solver::EulerSolver serial(&global);
  ParallelEulerSolver par(&dm, &eng);
  init_both(global, serial, par, dm);

  serial.run(5);
  par.run(5);
  par.validate_replication();

  double max_diff = 0;
  for (Rank r = 0; r < P; ++r) {
    const auto& lm = dm.local(r);
    for (Index v = 0; v < static_cast<Index>(lm.vert_global.size()); ++v) {
      const auto& a = par.solution(r)[static_cast<std::size_t>(v)];
      const auto& b =
          serial.solution()[static_cast<std::size_t>(lm.vert_global[v])];
      for (int c = 0; c < solver::kNumVars; ++c) {
        max_diff = std::max(max_diff, std::abs(a[c] - b[c]));
      }
    }
  }
  EXPECT_LT(max_diff, 1e-10);
}

TEST(ParallelSolver, FluxWorkIsDisjointAcrossRanks) {
  // Owner-computes: total flux evaluations equal the active edge count of
  // the gathered mesh, with no double counting.
  const Rank P = 5;
  auto global = mesh::make_box_mesh(mesh::small_box(3));
  const auto part = partition_roots(global, P);
  DistMesh dm(global, part, P);
  rt::Engine eng(P);
  ParallelEulerSolver par(&dm, &eng);
  const auto info = par.step();
  std::int64_t total = 0;
  for (auto w : info.edge_flux_evals) total += w;
  // One RK2 step evaluates each edge's flux exactly twice, globally.
  EXPECT_EQ(total, 2 * global.num_active_edges());
}

}  // namespace
}  // namespace plum::pmesh
