// Unit tests for src/graph: CSR construction, coloring, connectivity, dual.

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "graph/coloring.hpp"
#include "graph/connect.hpp"
#include "graph/csr.hpp"
#include "graph/dual.hpp"

namespace plum::graph {
namespace {

Csr path_graph(Index n) {
  std::vector<std::pair<Index, Index>> edges;
  for (Index i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Csr::from_edges(n, edges);
}

Csr complete_graph(Index n) {
  std::vector<std::pair<Index, Index>> edges;
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return Csr::from_edges(n, edges);
}

TEST(Csr, BuildsSymmetricAdjacency) {
  const auto g = path_graph(4);
  g.validate();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Csr, EdgeWeightsAlignedWithNeighbors) {
  std::vector<std::pair<Index, Index>> edges = {{0, 1}, {1, 2}};
  std::vector<Weight> w = {10, 20};
  const auto g = Csr::from_edges(3, edges, w);
  const auto n1 = g.neighbors(1);
  const auto w1 = g.edge_weights(1);
  for (std::size_t i = 0; i < n1.size(); ++i) {
    if (n1[i] == 0) {
      EXPECT_EQ(w1[i], 10);
    }
    if (n1[i] == 2) {
      EXPECT_EQ(w1[i], 20);
    }
  }
}

TEST(Csr, DefaultWeightsAreUnit) {
  const auto g = path_graph(3);
  EXPECT_EQ(g.total_wcomp(), 3);
  EXPECT_EQ(g.total_wremap(), 3);
}

TEST(Csr, SetWeights) {
  auto g = path_graph(3);
  g.set_weights({1, 2, 3}, {4, 5, 6});
  EXPECT_EQ(g.wcomp(1), 2);
  EXPECT_EQ(g.wremap(2), 6);
  EXPECT_EQ(g.total_wcomp(), 6);
  EXPECT_EQ(g.total_wremap(), 15);
}

TEST(Csr, EmptyGraph) {
  const auto g = Csr::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Coloring, GreedyIsValidOnPath) {
  const auto g = path_graph(10);
  const auto c = greedy_coloring(g);
  EXPECT_TRUE(is_valid_coloring(g, c.color));
  EXPECT_LE(c.num_colors, 2);
}

TEST(Coloring, GreedyOnCompleteGraphNeedsNColors) {
  const auto g = complete_graph(5);
  const auto c = greedy_coloring(g);
  EXPECT_TRUE(is_valid_coloring(g, c.color));
  EXPECT_EQ(c.num_colors, 5);
}

TEST(Coloring, LubyIsValid) {
  const auto g = complete_graph(6);
  const auto c = luby_coloring(g, 42);
  EXPECT_TRUE(is_valid_coloring(g, c.color));
  EXPECT_EQ(c.num_colors, 6);
}

TEST(Coloring, LubyDeterministicForSeed) {
  const auto g = path_graph(50);
  const auto a = luby_coloring(g, 7);
  const auto b = luby_coloring(g, 7);
  EXPECT_EQ(a.color, b.color);
}

TEST(Connect, SingleComponent) {
  const auto g = path_graph(5);
  const auto c = connected_components(g);
  EXPECT_EQ(c.num_components, 1);
}

TEST(Connect, TwoComponents) {
  std::vector<std::pair<Index, Index>> edges = {{0, 1}, {2, 3}};
  const auto g = Csr::from_edges(4, edges);
  const auto c = connected_components(g);
  EXPECT_EQ(c.num_components, 2);
  EXPECT_EQ(c.comp[0], c.comp[1]);
  EXPECT_NE(c.comp[0], c.comp[2]);
}

TEST(Connect, BfsDistancesOnPath) {
  const auto g = path_graph(5);
  std::vector<Index> dist;
  const auto order = bfs_order(g, 0, &dist);
  EXPECT_EQ(order.size(), 5u);
  EXPECT_EQ(dist[4], 4);
}

TEST(Connect, BfsRespectsMask) {
  const auto g = path_graph(5);
  std::vector<char> mask = {1, 1, 0, 1, 1};  // vertex 2 blocked
  std::vector<Index> dist;
  const auto order = bfs_order(g, 0, &dist, mask);
  EXPECT_EQ(order.size(), 2u);  // only 0,1 reachable
  EXPECT_EQ(dist[3], kInvalidIndex);
}

TEST(Connect, PseudoPeripheralOnPathIsEndpoint) {
  const auto g = path_graph(9);
  const Index v = pseudo_peripheral(g, 4);
  EXPECT_TRUE(v == 0 || v == 8);
}

TEST(Dual, TwoTetsSharingFace) {
  // Tets (0,1,2,3) and (1,2,3,4) share face {1,2,3}.
  std::vector<std::array<Index, 4>> tets = {{0, 1, 2, 3}, {1, 2, 3, 4}};
  const auto d = build_dual(tets);
  d.validate();
  EXPECT_EQ(d.num_vertices(), 2);
  EXPECT_EQ(d.num_edges(), 1);
}

TEST(Dual, IsolatedTetsHaveNoEdges) {
  std::vector<std::array<Index, 4>> tets = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  const auto d = build_dual(tets);
  EXPECT_EQ(d.num_edges(), 0);
}

TEST(Dual, MaxDegreeIsFour) {
  // A fan of tets around a central one cannot exceed 4 dual neighbors.
  std::vector<std::array<Index, 4>> tets = {
      {0, 1, 2, 3}, {1, 2, 3, 4}, {0, 2, 3, 5}, {0, 1, 3, 6}, {0, 1, 2, 7}};
  const auto d = build_dual(tets);
  EXPECT_EQ(d.degree(0), 4);
}

}  // namespace
}  // namespace plum::graph
